#include "core/frame_cache.hh"

#include <algorithm>
#include <cmath>
#include <limits>

#include "obs/metrics.hh"
#include "support/logging.hh"
#include "support/rng.hh"

namespace coterie::core {

using geom::Vec2;

FrameCache::FrameCache(FrameCacheParams params)
    : params_(params), rngState_(params.seed)
{
    COTERIE_ASSERT(params_.bucketEdge > 0.0, "bad bucket edge");
}

std::int64_t
FrameCache::bucketOf(Vec2 p) const
{
    const auto bx =
        static_cast<std::int64_t>(std::floor(p.x / params_.bucketEdge));
    const auto by =
        static_cast<std::int64_t>(std::floor(p.y / params_.bucketEdge));
    // Interleave into one key; ranges are far below 2^31.
    return (bx << 32) ^ (by & 0xffffffffll);
}

const CachedFrame *
FrameCache::findBest(const Key &key, double distThresh,
                     CacheStats *stats) const
{
    if (params_.mode == MatchMode::ExactOnly) {
        const auto it = entries_.find(key.gridKey);
        return it != entries_.end() ? &it->second : nullptr;
    }

    // Exact hit short-circuits.
    if (const auto it = entries_.find(key.gridKey); it != entries_.end())
        return &it->second;

    const CachedFrame *best = nullptr;
    double best_dist = std::numeric_limits<double>::infinity();
    // Scan the 3x3 bucket neighbourhood around the query (distThresh is
    // expected to be <= bucketEdge; larger thresholds widen the scan).
    const int reach = std::max(
        1, static_cast<int>(std::ceil(distThresh / params_.bucketEdge)));
    const auto bx =
        static_cast<std::int64_t>(std::floor(key.position.x /
                                             params_.bucketEdge));
    const auto by =
        static_cast<std::int64_t>(std::floor(key.position.y /
                                             params_.bucketEdge));
    for (std::int64_t dy = -reach; dy <= reach; ++dy) {
        for (std::int64_t dx = -reach; dx <= reach; ++dx) {
            const std::int64_t bucket =
                ((bx + dx) << 32) ^ ((by + dy) & 0xffffffffll);
            const auto bit = buckets_.find(bucket);
            if (bit == buckets_.end())
                continue;
            for (std::uint64_t grid_key : bit->second) {
                const auto eit = entries_.find(grid_key);
                if (eit == entries_.end())
                    continue;
                const CachedFrame &frame = eit->second;
                // Criterion 2: same leaf region.
                if (frame.leafRegionId != key.leafRegionId) {
                    if (stats)
                        ++stats->rejectedRegion;
                    continue;
                }
                // Criterion 3: identical near-BE object set.
                if (frame.nearSetSignature != key.nearSetSignature) {
                    if (stats)
                        ++stats->rejectedSignature;
                    continue;
                }
                // Criterion 1: within the distance threshold.
                const double d = frame.position.distance(key.position);
                if (d > distThresh) {
                    if (stats)
                        ++stats->rejectedDistance;
                    continue;
                }
                if (d < best_dist) {
                    best_dist = d;
                    best = &frame;
                }
            }
        }
    }
    return best;
}

std::optional<std::uint64_t>
FrameCache::lookup(const Key &key, double distThresh)
{
    support::MutexLock lock(mutex_);
    ++clock_;
    ++stats_.lookups;
    COTERIE_COUNT("cache.lookups");
    const CachedFrame *best = findBest(key, distThresh, &stats_);
    if (!best) {
        COTERIE_COUNT("cache.misses");
        return std::nullopt;
    }
    ++stats_.hits;
    COTERIE_COUNT("cache.hits");
    if (best->gridKey == key.gridKey)
        ++stats_.exactHits;
    // Touch for LRU.
    entries_[best->gridKey].lastUseTick = clock_;
    return best->gridKey;
}

std::optional<std::uint64_t>
FrameCache::peek(const Key &key, double distThresh) const
{
    support::MutexLock lock(mutex_);
    const CachedFrame *best = findBest(key, distThresh, nullptr);
    if (!best)
        return std::nullopt;
    return best->gridKey;
}

bool
FrameCache::containsExact(std::uint64_t gridKey) const
{
    support::MutexLock lock(mutex_);
    return entries_.count(gridKey) > 0;
}

void
FrameCache::insert(const Key &key, std::uint32_t sizeBytes)
{
    support::MutexLock lock(mutex_);
    ++clock_;
    if (entries_.count(key.gridKey))
        return; // already resident
    while (bytesUsed_ + sizeBytes > params_.capacityBytes &&
           !entries_.empty()) {
        evictOne();
    }
    CachedFrame frame;
    frame.gridKey = key.gridKey;
    frame.position = key.position;
    frame.leafRegionId = key.leafRegionId;
    frame.nearSetSignature = key.nearSetSignature;
    frame.sizeBytes = sizeBytes;
    frame.lastUseTick = clock_;
    frame.insertTick = clock_;
    entries_.emplace(key.gridKey, frame);
    buckets_[bucketOf(key.position)].push_back(key.gridKey);
    bytesUsed_ += sizeBytes;
    ++stats_.insertions;
    COTERIE_COUNT("cache.insertions");
    COTERIE_GAUGE_SET("cache.bytes_used", bytesUsed_);
}

void
FrameCache::evictOne()
{
    COTERIE_ASSERT(!entries_.empty(), "evict from empty cache");
    std::uint64_t victim = 0;
    switch (params_.policy) {
      case ReplacementPolicy::Lru: {
        std::uint64_t oldest = UINT64_MAX;
        for (const auto &[key, frame] : entries_) {
            if (frame.lastUseTick < oldest) {
                oldest = frame.lastUseTick;
                victim = key;
            }
        }
        break;
      }
      case ReplacementPolicy::Flf: {
        double furthest = -1.0;
        for (const auto &[key, frame] : entries_) {
            const double d = frame.position.distance(playerPos_);
            if (d > furthest) {
                furthest = d;
                victim = key;
            }
        }
        break;
      }
      case ReplacementPolicy::Random: {
        const std::uint64_t pick =
            splitmix64(rngState_) % entries_.size();
        auto it = entries_.begin();
        std::advance(it, static_cast<std::ptrdiff_t>(pick));
        victim = it->first;
        break;
      }
    }

    const auto it = entries_.find(victim);
    COTERIE_ASSERT(it != entries_.end(), "victim vanished");
    auto &bucket = buckets_[bucketOf(it->second.position)];
    bucket.erase(std::remove(bucket.begin(), bucket.end(), victim),
                 bucket.end());
    bytesUsed_ -= it->second.sizeBytes;
    entries_.erase(it);
    ++stats_.evictions;
    COTERIE_COUNT("cache.evictions");
}

} // namespace coterie::core
