#include "core/cutoff.hh"

#include <algorithm>
#include <cmath>

#include "obs/metrics.hh"
#include "render/cost_model.hh"
#include "support/logging.hh"

namespace coterie::core {

double
nearBeRenderTimeMs(const world::VirtualWorld &world, geom::Vec2 location,
                   double cutoff, const device::PhoneProfile &profile)
{
    return render::renderTimeMs(world, location, 0.0, cutoff, profile.cost);
}

double
maxCutoffRadius(const world::VirtualWorld &world, geom::Vec2 location,
                const device::PhoneProfile &profile,
                const CutoffConstraint &constraint, double tolerance)
{
    const double budget = constraint.nearBudgetMs();
    COTERIE_ASSERT(budget > 0.0, "FI render time exceeds frame budget");

    const double diag = std::hypot(world.bounds().width(),
                                   world.bounds().height());
    const double hi_limit = std::min(constraint.maxRadius, diag);

    // Fetch the object set once for the whole search: every probe below
    // replays the cached per-object terms instead of re-running the BVH
    // disc query (the dominant cost of a probe), bit-identical to the
    // uncached nearBeRenderTimeMs.
    const render::LocationCostCache cost(world, location, hi_limit,
                                         profile.cost);
    const auto timeAtMs = [&](double cutoff) {
        return cost.renderTimeMs(0.0, cutoff);
    };

    if (timeAtMs(constraint.minRadius) >= budget)
        return constraint.minRadius;
    if (timeAtMs(hi_limit) < budget)
        return hi_limit;

    double lo = constraint.minRadius; // satisfies the constraint
    double hi = hi_limit;             // violates the constraint
    int iterations = 0;
    while (hi - lo > tolerance) {
        const double mid = 0.5 * (lo + hi);
        if (timeAtMs(mid) < budget)
            lo = mid;
        else
            hi = mid;
        ++iterations;
    }
    COTERIE_COUNT("cutoff.searches");
    COTERIE_OBSERVE("cutoff.search_iterations", iterations);
    return lo;
}

} // namespace coterie::core
