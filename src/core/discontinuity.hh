/**
 * @file
 * User-perceived discontinuity scoring (paper §7.4, Table 10).
 *
 * Coterie may reuse a cached far-BE frame for several consecutive grid
 * points and then switch to a freshly fetched one; the switch is a
 * potential visual discontinuity. The paper ran an IRB user study
 * (1 = very annoying .. 5 = imperceptible). We substitute a scoring
 * model driven by the SSIM between consecutively displayed far-BE
 * frames — consistent with the paper's own use of SSIM as a perceptual
 * proxy — mapping similarity at each frame switch to the 5-point scale.
 */

#pragma once

#include <array>
#include <vector>

#include "core/partitioner.hh"
#include "core/similarity.hh"
#include "trace/trace.hh"
#include "world/grid.hh"

namespace coterie::core {

/** Distribution over the 1-5 user-study scale (fractions sum to 1). */
struct ScoreDistribution
{
    std::array<double, 5> fraction{}; // index 0 -> score 1

    double mean() const;
};

/** Map one frame-switch SSIM to a 1-5 score. */
int scoreForSsim(double ssim);

/**
 * Replay a single-player trace under Coterie-style frame reuse: at
 * each grid transition, either the cached frame is reused (no switch)
 * or a new frame is fetched (a switch whose discontinuity is the SSIM
 * between the previous displayed frame's location and the new one).
 * Returns the score distribution over all switches.
 *
 * @p reuseDistance the leaf region's dist threshold at each point is
 * approximated by the similarity model's inverse at the local cutoff.
 */
ScoreDistribution scoreTraceReplay(const trace::PlayerTrace &trace,
                                   const world::GridMap &grid,
                                   const RegionIndex &regions,
                                   const SimilarityModel &model,
                                   const std::vector<double> &distThresholds);

} // namespace coterie::core

