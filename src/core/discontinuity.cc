#include "core/discontinuity.hh"

#include <algorithm>


namespace coterie::core {

double
ScoreDistribution::mean() const
{
    double acc = 0.0;
    for (std::size_t i = 0; i < fraction.size(); ++i)
        acc += fraction[i] * static_cast<double>(i + 1);
    return acc;
}

int
scoreForSsim(double ssim)
{
    // Thresholds anchored at the paper's own semantics: SSIM above 0.9
    // is "good" visual quality, so a switch at or above the reuse
    // threshold is at worst "perceptible but not annoying".
    if (ssim >= 0.95)
        return 5;
    if (ssim >= 0.88)
        return 4;
    if (ssim >= 0.80)
        return 3;
    if (ssim >= 0.70)
        return 2;
    return 1;
}

ScoreDistribution
scoreTraceReplay(const trace::PlayerTrace &trace, const world::GridMap &grid,
                 const RegionIndex &regions, const SimilarityModel &model,
                 const std::vector<double> &distThresholds)
{
    ScoreDistribution dist;
    std::array<std::uint64_t, 5> counts{};
    std::uint64_t switches = 0;

    // Displayed-frame state: the location whose far-BE frame is shown.
    bool have_frame = false;
    geom::Vec2 frame_pos;
    std::uint32_t frame_region = 0;

    const auto path = trace.gridPath(grid);
    for (const world::GridPoint g : path) {
        const geom::Vec2 p = grid.position(g);
        const LeafRegion &leaf = regions.leafAt(p);
        const double thresh = leaf.id < distThresholds.size()
                                  ? distThresholds[leaf.id]
                                  : 0.0;
        const bool reusable = have_frame && frame_region == leaf.id &&
                              frame_pos.distance(p) <= thresh;
        if (reusable)
            continue; // same frame keeps being displayed: no switch
        if (have_frame) {
            // Frame switch: old frame (rendered for frame_pos) is
            // replaced by the new frame for p while the player is at p.
            const double ssim =
                model.farBeSsim(frame_pos, p, leaf.cutoffRadius);
            ++counts[static_cast<std::size_t>(scoreForSsim(ssim) - 1)];
            ++switches;
        }
        have_frame = true;
        frame_pos = p;
        frame_region = leaf.id;
    }

    if (switches == 0) {
        dist.fraction[4] = 1.0; // nothing ever switched: imperceptible
        return dist;
    }
    for (std::size_t i = 0; i < counts.size(); ++i)
        dist.fraction[i] = static_cast<double>(counts[i]) /
                           static_cast<double>(switches);
    return dist;
}

} // namespace coterie::core
