#include "core/systems/common.hh"

namespace coterie::core {

namespace {

template <typename Fn>
double
averageOver(const std::vector<PlayerMetrics> &players, Fn &&fn)
{
    if (players.empty())
        return 0.0;
    double acc = 0.0;
    for (const PlayerMetrics &m : players)
        acc += fn(m);
    return acc / static_cast<double>(players.size());
}

} // namespace

double
SystemResult::avgFps() const
{
    return averageOver(players,
                       [](const PlayerMetrics &m) { return m.fps; });
}

double
SystemResult::avgInterFrameMs() const
{
    return averageOver(
        players, [](const PlayerMetrics &m) { return m.interFrameMs; });
}

double
SystemResult::avgNetDelayMs() const
{
    return averageOver(
        players, [](const PlayerMetrics &m) { return m.netDelayMs; });
}

double
SystemResult::avgCacheHitRatio() const
{
    return averageOver(
        players, [](const PlayerMetrics &m) { return m.cacheHitRatio; });
}

} // namespace coterie::core
