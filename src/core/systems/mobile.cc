/**
 * @file
 * Mobile (local rendering) system model: the whole scene is rendered
 * on the phone each frame; frame time is the device render time of the
 * full scene, and the GPU saturates (Table 1: 88-99% GPU, 21-27 FPS).
 */

#include "core/systems/systems.hh"

#include <algorithm>

#include "net/fi_sync.hh"
#include "render/cost_model.hh"
#include "support/logging.hh"

namespace coterie::core {

SystemResult
runMobile(const SystemConfig &config)
{
    COTERIE_ASSERT(config.world && config.traces, "incomplete config");
    const auto &world = *config.world;
    const auto &traces = *config.traces;
    const int players = traces.playerCount();
    net::FiSync fi_sync(config.fiSync, 13);

    SystemResult result;
    result.systemName = "Mobile";
    result.durationMs = traces.durationMs();

    for (const trace::PlayerTrace &tr : traces.players) {
        PlayerMetrics m;
        m.playerId = tr.playerId;
        RunningStats frame_time;
        RunningStats render_time;

        // Walk the trace; each displayed frame costs the full-scene
        // render (plus remote players' FI and the sync wait).
        double now = 0.0;
        const double duration = result.durationMs;
        while (now < duration) {
            const auto idx = static_cast<std::size_t>(
                std::min(now / traces.tickMs,
                         static_cast<double>(tr.points.size() - 1)));
            const geom::Vec2 pos = tr.points[idx].position;
            double rt = config.rtFiMs +
                        render::renderTimeMs(world, pos, 0.0,
                                             config.profile.cost
                                                 .cullDistance,
                                             config.profile.cost);
            // Remote players' FI adds per-player render cost and the
            // sync latency can gate the frame.
            rt += config.rtFiMs * 0.6 * (players - 1);
            const double sync =
                players > 1 ? fi_sync.syncLatencyMs(players) : 0.0;
            const double ft =
                std::max(config.tickMs, std::max(rt, sync) + 1.0);
            frame_time.add(ft);
            render_time.add(rt);
            ++m.framesDisplayed;
            now += ft;
        }

        m.interFrameMs = frame_time.mean();
        m.fps = m.interFrameMs > 0.0 ? 1000.0 / m.interFrameMs : 0.0;
        m.responsivenessMs =
            config.sensorMs + frame_time.mean();
        m.renderMsPerFrame = render_time.mean();
        m.gpuPct =
            device::gpuLoadPct(config.profile, m.renderMsPerFrame, m.fps);
        device::CpuLoadInputs cpu_in;
        cpu_in.networkMbps = 0.0;
        cpu_in.decodeFps = 0.0;
        cpu_in.syncHz = players > 1 ? 60.0 : 0.0;
        cpu_in.rendering = true;
        m.cpuPct = device::cpuLoadPct(config.profile, cpu_in) +
                   2.0 * (players - 1); // local FI replication work
        m.fiKbps = fi_sync.bandwidthKbps(players) / std::max(1, players);
        result.players.push_back(m);
    }
    return result;
}

} // namespace coterie::core
