/**
 * @file
 * Shared configuration and result types for the four end-to-end system
 * models (Mobile, Thin-client, Multi-Furion, Coterie).
 */

#pragma once

#include <string>
#include <vector>

#include "core/frame_cache.hh"
#include "core/server.hh"
#include "device/phone.hh"
#include "net/channel.hh"
#include "net/endpoints.hh"
#include "net/fi_sync.hh"
#include "net/resilience.hh"
#include "sim/faults.hh"
#include "trace/trace.hh"

namespace coterie::core {

/** Everything a system simulation needs. */
struct SystemConfig
{
    const world::VirtualWorld *world = nullptr;
    const world::GridMap *grid = nullptr;
    const RegionIndex *regions = nullptr;
    const FrameStore *frames = nullptr;
    const trace::SessionTrace *traces = nullptr;
    device::PhoneProfile profile{};
    net::ChannelParams channel{};
    net::FiSyncParams fiSync{};

    /**
     * Human-readable session identity (the game name) prefixed onto
     * the frame-trace / SLO label: `<tag>/<N>p/<system>`. Empty tags
     * fall back to "session".
     */
    std::string sessionTag;

    /** Per-frame FI render time on the device (paper: < 4 ms,
     *  measured ~2.5 ms typical). */
    double rtFiMs = 2.5;
    /** Frame merge + projection cost after all inputs are ready. */
    double mergeMs = 4.5;
    /** Sensor sampling latency folded into responsiveness. */
    double sensorMs = 1.0;
    /** Display refresh budget (60 Hz). */
    double tickMs = 1000.0 / 60.0;

    /**
     * Optional scripted fault plan (chaos harness, sim/faults.hh).
     * Null or empty = the clean pre-chaos run, bit for bit.
     */
    const sim::FaultPlan *faults = nullptr;
    /** Client-side resilience policy; disabled = pre-chaos client. */
    net::ResilienceParams resilience{};
    /** Server fan-out guard; default (unbounded) = pre-chaos server. */
    net::FrameServerParams serverNet{};
};

/** Per-player outcome of a run. */
struct PlayerMetrics
{
    int playerId = 0;
    double fps = 0.0;
    double interFrameMs = 0.0;
    double responsivenessMs = 0.0;
    double cpuPct = 0.0;
    double gpuPct = 0.0;
    double frameKb = 0.0;       ///< mean fetched frame size
    double netDelayMs = 0.0;    ///< mean per-transfer latency
    double beMbps = 0.0;        ///< BE prefetch bandwidth
    double fiKbps = 0.0;        ///< FI sync bandwidth share
    double renderMsPerFrame = 0.0;
    std::uint64_t framesDisplayed = 0;
    std::uint64_t framesFetched = 0;
    std::uint64_t gridTransitions = 0;
    double cacheHitRatio = 0.0; ///< 1 - fetches/transitions (see docs)
    CacheStats cacheStats{};

    // Resilience / chaos accounting (all zero on a clean run).
    std::uint64_t stalls = 0;         ///< display stalls entered
    double stallMs = 0.0;             ///< total frozen time across stalls
    std::uint64_t framesDegraded = 0; ///< stale-panorama substitutions
    std::uint64_t netRetries = 0;     ///< fetch attempts after a timeout
    std::uint64_t netTimeouts = 0;    ///< per-attempt deadline misses
    std::uint64_t fetchGiveups = 0;   ///< fetches failed after maxAttempts
    std::uint64_t disconnects = 0;    ///< scripted WLAN drops entered
    std::uint64_t rejoins = 0;        ///< reconnects completed
    /**
     * Frame-level hit ratio inside the post-rejoin probe window: the
     * fraction of displayed frames (after the settle period) served
     * without a stall or degradation. -1 when no window was observed.
     */
    double rejoinHitRatio = -1.0;
};

/** Whole-session outcome. */
struct SystemResult
{
    std::string systemName;
    std::vector<PlayerMetrics> players;
    double durationMs = 0.0;
    double channelUtilMbps = 0.0;

    /** Averages across players. */
    double avgFps() const;
    double avgInterFrameMs() const;
    double avgNetDelayMs() const;
    double avgCacheHitRatio() const;
};

} // namespace coterie::core

