/**
 * @file
 * Shared configuration and result types for the four end-to-end system
 * models (Mobile, Thin-client, Multi-Furion, Coterie).
 */

#pragma once

#include <string>
#include <vector>

#include "core/frame_cache.hh"
#include "core/server.hh"
#include "device/phone.hh"
#include "net/channel.hh"
#include "net/endpoints.hh"
#include "net/fi_sync.hh"
#include "net/resilience.hh"
#include "sim/faults.hh"
#include "trace/trace.hh"

namespace coterie::core {

/** Everything a system simulation needs. */
struct SystemConfig
{
    const world::VirtualWorld *world = nullptr;
    const world::GridMap *grid = nullptr;
    const RegionIndex *regions = nullptr;
    const FrameStore *frames = nullptr;
    const trace::SessionTrace *traces = nullptr;
    device::PhoneProfile profile{};
    net::ChannelParams channel{};
    net::FiSyncParams fiSync{};

    /**
     * Human-readable session identity (the game name) prefixed onto
     * the frame-trace / SLO label: `<tag>/<N>p/<system>`. Empty tags
     * fall back to "session".
     */
    std::string sessionTag;

    /** Per-frame FI render time on the device (paper: < 4 ms,
     *  measured ~2.5 ms typical). */
    double rtFiMs = 2.5;
    /** Frame merge + projection cost after all inputs are ready. */
    double mergeMs = 4.5;
    /** Sensor sampling latency folded into responsiveness. */
    double sensorMs = 1.0;
    /** Display refresh budget (60 Hz). */
    double tickMs = 1000.0 / 60.0;

    /**
     * Optional scripted fault plan (chaos harness, sim/faults.hh).
     * Null or empty = the clean pre-chaos run, bit for bit.
     */
    const sim::FaultPlan *faults = nullptr;
    /** Client-side resilience policy; disabled = pre-chaos client. */
    net::ResilienceParams resilience{};
    /** Server fan-out guard; default (unbounded) = pre-chaos server. */
    net::FrameServerParams serverNet{};

    /**
     * Record a per-player `FrameLogEntry` for every committed frame
     * into `SystemResult::frameLogs`. Observe-only: the log is
     * assembled from values the run computes anyway, so recording
     * never perturbs the simulation — it exists so fleet isolation
     * tests can assert a session's frame output is byte-identical
     * with and without siblings.
     */
    bool recordFrameLog = false;

    /**
     * Testing hook for the fleet error boundary: when >= 0, the first
     * frame-loop tick at or after this sim time throws. Under a
     * `SessionManager` the exception is confined to the owning
     * session (quarantined, phase = Faulted); in a solo run it
     * propagates to the caller. -1 (default) disables the hook.
     */
    double injectFaultAtMs = -1.0;
};

/**
 * One committed frame in the optional per-frame output log: exactly
 * the values the display path derives from simulation state, so two
 * runs whose entries compare equal produced bit-identical frame
 * streams (times and latencies are compared at full double
 * precision, not rounded).
 */
struct FrameLogEntry
{
    double displayMs = 0.0;  ///< sim time the frame was committed
    double latencyMs = 0.0;  ///< Equation-2 latency of the frame
    double renderMs = 0.0;   ///< FI (+ far-BE) render term
    /** Cumulative bytes fetched by the player at commit time. */
    std::uint64_t bytesFetched = 0;
    bool degraded = false;   ///< served via stall or stale panorama
    bool operator==(const FrameLogEntry &) const = default;
};

/** Per-player outcome of a run. */
struct PlayerMetrics
{
    int playerId = 0;
    double fps = 0.0;
    double interFrameMs = 0.0;
    double responsivenessMs = 0.0;
    double cpuPct = 0.0;
    double gpuPct = 0.0;
    double frameKb = 0.0;       ///< mean fetched frame size
    double netDelayMs = 0.0;    ///< mean per-transfer latency
    double beMbps = 0.0;        ///< BE prefetch bandwidth
    double fiKbps = 0.0;        ///< FI sync bandwidth share
    double renderMsPerFrame = 0.0;
    std::uint64_t framesDisplayed = 0;
    std::uint64_t framesFetched = 0;
    std::uint64_t gridTransitions = 0;
    double cacheHitRatio = 0.0; ///< 1 - fetches/transitions (see docs)
    CacheStats cacheStats{};

    // Resilience / chaos accounting (all zero on a clean run).
    std::uint64_t stalls = 0;         ///< display stalls entered
    double stallMs = 0.0;             ///< total frozen time across stalls
    std::uint64_t framesDegraded = 0; ///< stale-panorama substitutions
    std::uint64_t netRetries = 0;     ///< fetch attempts after a timeout
    std::uint64_t netTimeouts = 0;    ///< per-attempt deadline misses
    std::uint64_t fetchGiveups = 0;   ///< fetches failed after maxAttempts
    std::uint64_t disconnects = 0;    ///< scripted WLAN drops entered
    std::uint64_t rejoins = 0;        ///< reconnects completed
    /**
     * Frame-level hit ratio inside the post-rejoin probe window: the
     * fraction of displayed frames (after the settle period) served
     * without a stall or degradation. -1 when no window was observed.
     */
    double rejoinHitRatio = -1.0;
};

/** Whole-session outcome. */
struct SystemResult
{
    std::string systemName;
    std::vector<PlayerMetrics> players;
    double durationMs = 0.0;
    double channelUtilMbps = 0.0;
    /** Per-player frame logs, one vector per player, populated only
     *  when `SystemConfig::recordFrameLog` was set. */
    std::vector<std::vector<FrameLogEntry>> frameLogs;

    /** Averages across players. */
    double avgFps() const;
    double avgInterFrameMs() const;
    double avgNetDelayMs() const;
    double avgCacheHitRatio() const;
};

} // namespace coterie::core

