/**
 * @file
 * Thin-client system model: the server renders and encodes every
 * display frame; the client decodes and displays. The loop is closed
 * (pose -> server render -> encode -> transfer -> decode -> display),
 * so frame latency is the whole chain, and the shared channel plus the
 * shared server GPU contend across players (Table 1: 15-24 FPS,
 * 41-64 ms inter-frame latency).
 */

#include "core/systems/systems.hh"

#include <algorithm>

#include "net/endpoints.hh"
#include "net/fi_sync.hh"
#include "support/logging.hh"

namespace coterie::core {

using sim::TimeMs;

SystemResult
runThinClient(const SystemConfig &config, const ThinClientParams &params)
{
    COTERIE_ASSERT(config.world && config.grid && config.frames &&
                   config.traces, "incomplete config");
    const auto &grid = *config.grid;
    const auto &frames = *config.frames;
    const auto &traces = *config.traces;
    const int players = traces.playerCount();
    const double duration = traces.durationMs();

    sim::EventQueue queue;
    net::SharedChannel channel(queue, config.channel);
    net::FiSync fi_sync(config.fiSync, 17);

    // Display-resolution frames decode fast (2 MP vs 8.3 MP panorama).
    const double decode_ms = device::decodeMs(config.profile, 1920, 1080);

    struct Client
    {
        RunningStats interFrame;
        RunningStats latency;
        RunningStats transfer;
        RunningStats frameKb;
        std::uint64_t frames = 0;
        std::uint64_t bytes = 0;
        TimeMs lastDisplay = 0.0;
    };
    std::vector<Client> clients(players);

    // The server GPU renders one frame at a time (FIFO).
    TimeMs gpu_free_at = 0.0;

    std::function<void(int)> next_frame = [&](int pid) {
        const TimeMs now = queue.now();
        if (now >= duration)
            return;
        const trace::PlayerTrace &tr = traces.players[pid];
        const auto idx = static_cast<std::size_t>(
            std::min(now / traces.tickMs,
                     static_cast<double>(tr.points.size() - 1)));
        const world::GridPoint g = grid.snap(tr.points[idx].position);
        const std::uint64_t bytes = frames.fovFrameBytes(g);

        // Queue on the shared server GPU, then encode, then transfer.
        const TimeMs frame_start = now;
        const TimeMs render_start = std::max(now, gpu_free_at);
        gpu_free_at = render_start + params.serverRenderMs;
        const TimeMs encoded_at = gpu_free_at + params.serverEncodeMs;
        queue.scheduleAt(encoded_at, [&, pid, bytes, frame_start] {
            const TimeMs sent_at = queue.now();
            channel.startTransfer(bytes, [&, pid, bytes, frame_start,
                                          sent_at](TimeMs arrived) {
                Client &cc = clients[pid];
                cc.transfer.add(arrived - sent_at);
                cc.bytes += bytes;
                cc.frameKb.add(static_cast<double>(bytes) / 1024.0);
                const TimeMs displayed =
                    arrived + decode_ms + params.clientDisplayMs;
                queue.scheduleAt(displayed, [&, pid, frame_start] {
                    Client &ccc = clients[pid];
                    const TimeMs done = queue.now();
                    ccc.interFrame.add(done - ccc.lastDisplay);
                    ccc.latency.add(config.sensorMs +
                                    (done - frame_start));
                    ccc.lastDisplay = done;
                    ++ccc.frames;
                    next_frame(pid);
                });
            });
        });
    };

    for (int p = 0; p < players; ++p)
        queue.scheduleIn(p * 3.7, [&, p] { next_frame(p); });
    queue.runUntil(duration + 1000.0);

    SystemResult result;
    result.systemName = "Thin-client";
    result.durationMs = duration;
    result.channelUtilMbps = channel.meanThroughputMbps();
    for (int p = 0; p < players; ++p) {
        Client &c = clients[p];
        PlayerMetrics m;
        m.playerId = p;
        m.framesDisplayed = c.frames;
        m.fps = duration > 0.0
                    ? static_cast<double>(c.frames) / (duration / 1000.0)
                    : 0.0;
        m.interFrameMs = c.interFrame.mean();
        m.responsivenessMs = c.latency.mean();
        m.netDelayMs = c.transfer.mean();
        m.frameKb = c.frameKb.mean();
        m.beMbps = duration > 0.0
                       ? static_cast<double>(c.bytes) * 8.0 /
                             (duration / 1000.0) / 1e6
                       : 0.0;
        m.fiKbps = fi_sync.bandwidthKbps(players) / std::max(1, players);
        // The phone only decodes and displays: light GPU, packet+decode
        // CPU.
        m.renderMsPerFrame = 0.0;
        m.gpuPct = device::gpuLoadPct(config.profile, 1.2, m.fps);
        device::CpuLoadInputs cpu_in;
        cpu_in.networkMbps = m.beMbps;
        cpu_in.decodeFps = m.fps;
        cpu_in.syncHz = players > 1 ? 60.0 : 0.0;
        cpu_in.rendering = false;
        m.cpuPct = device::cpuLoadPct(config.profile, cpu_in) + 12.0;
        result.players.push_back(m);
    }
    return result;
}

} // namespace coterie::core
