/**
 * @file
 * Multi-Furion: the prior-art single-player split-rendering design
 * replicated per player (paper §3). Whole-BE panoramas are prefetched
 * for every grid transition; FI is exchanged via the sync fabric and
 * rendered locally. The optional exact-match frame cache reproduces
 * the "Multi-Furion w/ frame cache" variant of Figure 11 (it almost
 * never hits: players do not revisit exact grid points).
 */

#include "core/systems/systems.hh"

namespace coterie::core {

SystemResult
runMultiFurion(const SystemConfig &config, bool withExactCache)
{
    const SplitVariant variant = SplitVariant::multiFurion(withExactCache);
    // Exact matching ignores distance thresholds.
    const std::vector<double> no_thresholds;
    return runSplitSystem(config, variant, no_thresholds,
                          withExactCache ? "Multi-Furion+cache"
                                         : "Multi-Furion");
}

} // namespace coterie::core
