/**
 * @file
 * The Coterie system (paper §5): near/far BE decoupling with the
 * adaptive cutoff quadtree, far-BE prefetching, and the similar-frame
 * cache. The no-cache variant (still prefetching the smaller far-BE
 * frames) is the "Coterie w/o cache" line of Figure 11.
 */

#include "core/systems/systems.hh"

namespace coterie::core {

SystemResult
runCoterie(const SystemConfig &config,
           const std::vector<double> &distThresholds, bool withCache,
           ReplacementPolicy policy, bool overhear)
{
    SplitVariant variant = SplitVariant::coterie(withCache);
    variant.policy = policy;
    variant.overhear = overhear;
    const char *name = !withCache  ? "Coterie w/o cache"
                       : overhear  ? "Coterie + overhearing"
                                   : "Coterie";
    return runSplitSystem(config, variant, distThresholds, name);
}

} // namespace coterie::core
