/**
 * @file
 * The four end-to-end system models compared in the paper:
 *
 *  - Mobile: render everything locally (Google Daydream style);
 *  - Thin-client: render + encode everything on the server, stream
 *    display frames;
 *  - Multi-Furion: Furion's FI / whole-BE split replicated per player,
 *    optionally with an exact-match frame cache (Figure 11 variant);
 *  - Coterie: near/far BE decoupling + similar-frame cache (optionally
 *    disabled for the Figure 11 "Coterie w/o cache" variant).
 */

#pragma once

#include "core/client.hh"
#include "core/systems/common.hh"

namespace coterie::core {

/** Local rendering only (no server, no network). */
SystemResult runMobile(const SystemConfig &config);

/** Server-side rendering, streamed display frames. */
struct ThinClientParams
{
    double serverRenderMs = 7.5; ///< GTX 1080 Ti per-frame render
    double serverEncodeMs = 16.0; ///< x264 4K-class encode
    double clientDisplayMs = 2.0;
};
SystemResult runThinClient(const SystemConfig &config,
                           const ThinClientParams &params = {});

/** Furion replicated N-fold (whole-BE prefetch each grid step). */
SystemResult runMultiFurion(const SystemConfig &config,
                            bool withExactCache = false);

/** Coterie (far-BE prefetch + similar-frame cache). */
SystemResult runCoterie(const SystemConfig &config,
                        const std::vector<double> &distThresholds,
                        bool withCache = true,
                        ReplacementPolicy policy = ReplacementPolicy::Lru,
                        bool overhear = false);

} // namespace coterie::core

