/**
 * @file
 * Per-leaf-region distance-threshold derivation (paper §5.3).
 *
 * A cached far-BE frame may substitute for a nearby grid point only if
 * the two frames are sufficiently similar (SSIM > 0.9). The offline
 * pass derives, per leaf region, the largest reuse distance that still
 * guarantees that: sample K grid points, binary-search the distance
 * (starting from 32 m downward) until the far-BE frames at that
 * separation reach the SSIM threshold, and keep the region minimum.
 */

#pragma once

#include <vector>

#include "core/partitioner.hh"
#include "support/rng.hh"
#include "core/similarity.hh"

namespace coterie::core {

/** Derivation knobs. */
struct DistThreshParams
{
    int samplesPerRegion = 10;   ///< the paper's K
    double startDistance = 32.0; ///< binary search upper bracket (m)
    double ssimThreshold = image::kGoodSsim;
    double tolerance = 0.02;     ///< search resolution (m)
    std::uint64_t seed = 17;
};

/**
 * Binary-search the reuse distance at one location: largest d such
 * that farBeSsim(l, l + d, cutoff) >= threshold.
 */
double distThreshAt(const SimilarityModel &model, geom::Vec2 location,
                    double cutoff, const DistThreshParams &params, Rng &rng);

/**
 * Derive the distance threshold for every leaf region (minimum over K
 * sampled grid points each). Returns one threshold per leaf, indexed
 * by LeafRegion::id.
 */
std::vector<double> deriveDistThresholds(const RegionIndex &index,
                                         const SimilarityModel &model,
                                         const DistThreshParams &params = {});

} // namespace coterie::core

