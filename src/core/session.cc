#include "core/session.hh"

#include "obs/trace.hh"
#include "support/logging.hh"

namespace coterie::core {

Session::Session(world::gen::GameId game, const SessionParams &params,
                 const OfflineArtifacts *artifacts)
    : params_(params), info_(world::gen::gameInfo(game)),
      world_(world::gen::makeWorld(game, params.seed)),
      grid_(world::gen::makeGrid(info_))
{
    COTERIE_SPAN("session.setup", "core");
    if (artifacts) {
        COTERIE_ASSERT(artifacts->game == info_.name,
                       "artifacts belong to ", artifacts->game,
                       ", not ", info_.name);
        partition_.leaves = artifacts->leaves;
        for (const LeafRegion &leaf : partition_.leaves) {
            partition_.avgLeafDepth += leaf.depth;
            partition_.maxLeafDepth =
                std::max(partition_.maxLeafDepth, leaf.depth);
        }
        if (!partition_.leaves.empty())
            partition_.avgLeafDepth /=
                static_cast<double>(partition_.leaves.size());
        regions_ = std::make_unique<RegionIndex>(world_.bounds(),
                                                 partition_.leaves);
        distThresholds_ = artifacts->distThresholds;
        similarityParams_ = params.similarity;
        frames_ = std::make_unique<FrameStore>(world_, grid_, *regions_,
                                               params.frameStore);

        trace::TrajectoryParams tp;
        tp.players = params.players;
        tp.durationS = params.durationS;
        tp.seed = hashCombine(params.seed, 0x77ace);
        traces_ = trace::generateTrace(info_, world_, tp);
        return;
    }

    // Offline step 1: adaptive cutoff partitioning (paper §4.3).
    PartitionParams part = params.partition;
    part.seed = hashCombine(params.seed, 0x9a97);
    if (!part.reachable)
        part.reachable = world::gen::makeReachability(info_, world_);
    partition_ = partitionWorld(world_, params.profile, part);
    regions_ = std::make_unique<RegionIndex>(world_.bounds(),
                                             partition_.leaves);

    // Offline step 2: per-region reuse distance thresholds (§5.3).
    {
        COTERIE_SPAN("session.dist_thresholds", "core");
        similarityParams_ = params.similarity;
        if (params.calibrateSimilarity) {
            // Fit against rendered SSIM at representative cutoffs.
            std::vector<double> cutoffs;
            const auto &leaves = partition_.leaves;
            for (std::size_t i = 0; i < leaves.size();
                 i += std::max<std::size_t>(1, leaves.size() / 4)) {
                if (leaves[i].reachable)
                    cutoffs.push_back(
                        std::max(1.0, leaves[i].cutoffRadius));
            }
            if (cutoffs.empty())
                cutoffs.push_back(8.0);
            similarityParams_ = calibrateAnalytic(
                world_, cutoffs, 5, hashCombine(params.seed, 0xca1),
                part.reachable);
            similarityParams_.alpha = params.similarity.alpha;
            similarityParams_.floor = params.similarity.floor;
        }
        AnalyticSimilarity similarity(similarityParams_);
        DistThreshParams dt = params.distThresh;
        dt.seed = hashCombine(params.seed, 0xd157);
        distThresholds_ = deriveDistThresholds(*regions_, similarity, dt);
    }

    // Offline step 3: the pre-rendered frame catalogue.
    frames_ = std::make_unique<FrameStore>(world_, grid_, *regions_,
                                           params.frameStore);

    // Online input: multi-player movement traces.
    trace::TrajectoryParams tp;
    tp.players = params.players;
    tp.durationS = params.durationS;
    tp.seed = hashCombine(params.seed, 0x77ace);
    traces_ = trace::generateTrace(info_, world_, tp);
}

std::unique_ptr<Session>
Session::create(world::gen::GameId game, const SessionParams &params)
{
    return std::unique_ptr<Session>(new Session(game, params, nullptr));
}

std::unique_ptr<Session>
Session::createFromArtifacts(world::gen::GameId game,
                             const OfflineArtifacts &artifacts,
                             const SessionParams &params)
{
    return std::unique_ptr<Session>(
        new Session(game, params, &artifacts));
}

SystemConfig
Session::systemConfig() const
{
    SystemConfig config;
    config.world = &world_;
    config.grid = &grid_;
    config.regions = regions_.get();
    config.frames = frames_.get();
    config.traces = &traces_;
    config.profile = params_.profile;
    config.channel = params_.channel;
    config.sessionTag = info_.name;
    return config;
}

SystemResult
Session::runMobileSystem() const
{
    return runMobile(systemConfig());
}

SystemResult
Session::runThinClientSystem() const
{
    return runThinClient(systemConfig());
}

SystemResult
Session::runMultiFurionSystem(bool withExactCache) const
{
    return runMultiFurion(systemConfig(), withExactCache);
}

SystemResult
Session::runCoterieSystem(bool withCache, ReplacementPolicy policy) const
{
    return runCoterie(systemConfig(), distThresholds_, withCache, policy);
}

SystemResult
Session::runCoterieChaos(const sim::FaultPlan &faults,
                         const net::ResilienceParams &resilience,
                         net::FrameServerParams serverNet,
                         bool withCache) const
{
    SystemConfig config = systemConfig();
    config.faults = &faults;
    config.resilience = resilience;
    config.serverNet = serverNet;
    return runCoterie(config, distThresholds_, withCache,
                      ReplacementPolicy::Lru);
}

} // namespace coterie::core
