/**
 * @file
 * Session orchestration: the one-stop setup a bench or application
 * needs — build the game world, run the offline preprocessing
 * (adaptive cutoff partitioning + distance thresholds), generate
 * multi-player traces, and run any of the four systems on it.
 */

#pragma once

#include <memory>

#include "core/dist_thresh.hh"
#include "core/offline_io.hh"
#include "core/systems/systems.hh"
#include "trace/trajectory.hh"
#include "world/gen/generators.hh"

namespace coterie::core {

/** Session setup knobs. */
struct SessionParams
{
    int players = 2;
    double durationS = 60.0; ///< benches use shorter runs than 10 min
    std::uint64_t seed = 42;
    device::PhoneProfile profile = device::pixel2();
    net::ChannelParams channel{};
    PartitionParams partition{};
    DistThreshParams distThresh{};
    AnalyticSimilarityParams similarity{};
    /** Fit the analytic similarity model against rendered SSIM for
     *  this world (a few dozen low-resolution panorama renders). */
    bool calibrateSimilarity = true;
    /** Frame-catalogue knobs; a fleet injects its shared render cache
     *  here (FrameStoreParams::sharedPanoCache). Defaults preserve the
     *  pre-fleet private-cache behaviour. */
    FrameStoreParams frameStore{};
};

/**
 * A fully preprocessed game session: world, grid, partition, distance
 * thresholds, frame catalogue, traces. Immovable once built (internal
 * cross-references); heap-allocate via Session::create.
 */
class Session
{
  public:
    static std::unique_ptr<Session> create(world::gen::GameId game,
                                           const SessionParams &params);

    /**
     * Build a session from previously saved offline artifacts (see
     * tools/coterie_offline): the world and traces are regenerated
     * from the seed, but the expensive preprocessing — partitioning,
     * similarity calibration, reuse distances — is loaded instead of
     * recomputed. The artifacts must belong to the same game.
     */
    static std::unique_ptr<Session>
    createFromArtifacts(world::gen::GameId game,
                        const OfflineArtifacts &artifacts,
                        const SessionParams &params);

    const world::gen::GameInfo &info() const { return info_; }
    const world::VirtualWorld &world() const { return world_; }
    const world::GridMap &grid() const { return grid_; }
    const RegionIndex &regions() const { return *regions_; }
    const PartitionResult &partition() const { return partition_; }
    const std::vector<double> &distThresholds() const
    {
        return distThresholds_;
    }
    const AnalyticSimilarityParams &similarityParams() const
    {
        return similarityParams_;
    }
    const FrameStore &frames() const { return *frames_; }
    const trace::SessionTrace &traces() const { return traces_; }
    const SessionParams &params() const { return params_; }

    /** SystemConfig wired to this session's components. */
    SystemConfig systemConfig() const;

    /** Run each system on this session. */
    SystemResult runMobileSystem() const;
    SystemResult runThinClientSystem() const;
    SystemResult runMultiFurionSystem(bool withExactCache = false) const;
    SystemResult runCoterieSystem(bool withCache = true,
                                  ReplacementPolicy policy =
                                      ReplacementPolicy::Lru) const;

    /**
     * Coterie under a scripted fault plan (the chaos harness): the
     * channel/server degrade per @p faults, the clients apply
     * @p resilience, and the server honours @p serverNet fan-out
     * limits. With an empty plan, disabled resilience, and default
     * server params this is bit-identical to runCoterieSystem().
     */
    SystemResult runCoterieChaos(const sim::FaultPlan &faults,
                                 const net::ResilienceParams &resilience,
                                 net::FrameServerParams serverNet = {},
                                 bool withCache = true) const;

  private:
    Session(world::gen::GameId game, const SessionParams &params,
            const OfflineArtifacts *artifacts);

    SessionParams params_;
    world::gen::GameInfo info_;
    world::VirtualWorld world_;
    world::GridMap grid_;
    PartitionResult partition_;
    std::unique_ptr<RegionIndex> regions_;
    AnalyticSimilarityParams similarityParams_;
    std::vector<double> distThresholds_;
    std::unique_ptr<FrameStore> frames_;
    trace::SessionTrace traces_;
};

} // namespace coterie::core

