/**
 * @file
 * Server-side panorama render de-duplication.
 *
 * The Coterie server renders one far-BE panorama per distinct
 * (world, quantized location, cutoff, resolution) — every client whose
 * FI location quantizes to the same cell shares the same frame (the
 * paper's frame-similarity premise applied server-side). This cache
 * makes that sharing explicit: `getOrRender` returns the cached frame
 * on a hit, and *single-flights* concurrent misses so N clients asking
 * for the same panorama at once trigger exactly one render while the
 * other N-1 block until it lands.
 *
 * Memory is bounded by a byte budget with LRU eviction (in-flight
 * entries are never evicted). Everything is observable:
 * `server.pano_cache.{hit,miss,inflight_join,evicted_bytes}` counters,
 * a `server.pano_cache.bytes` gauge, and a `server.pano_cache.render`
 * trace span around each actual render.
 */

#pragma once

#include <cstddef>
#include <cstdint>
#include <functional>
#include <memory>
#include <optional>
#include <unordered_map>

#include "image/image.hh"
#include "obs/frame_trace.hh"
#include "support/rng.hh"
#include "support/thread_annotations.hh"

namespace coterie::core {

/**
 * Identity of one cached panorama. Two key schemes share the map and
 * must not collide:
 *  - grid-point keys (offline prerender): `pitchBits == 0` sentinel,
 *    `qx`/`qy` are grid indices;
 *  - quantized-location keys (online far-BE lookup): `pitchBits` holds
 *    the quantization pitch's bit pattern (never zero), `qx`/`qy` are
 *    cell indices at that pitch.
 * `cutoffBits` carries the far-BE cutoff radius bit pattern so a
 * partition change can never alias a stale frame.
 */
struct PanoKey
{
    std::uint64_t worldTag = 0;   ///< world identity (name + object count)
    std::int64_t qx = 0;          ///< quantized x (cell or grid index)
    std::int64_t qy = 0;          ///< quantized y (cell or grid index)
    std::uint64_t cutoffBits = 0; ///< bit pattern of the cutoff radius
    std::uint64_t pitchBits = 0;  ///< bit pattern of the pitch (0 = grid)
    int width = 0;                ///< panorama resolution
    int height = 0;

    bool operator==(const PanoKey &) const = default;
};

struct PanoKeyHash
{
    std::size_t
    operator()(const PanoKey &k) const
    {
        std::uint64_t h = hashMix(k.worldTag);
        h = hashCombine(h, hashMix(static_cast<std::uint64_t>(k.qx)));
        h = hashCombine(h, hashMix(static_cast<std::uint64_t>(k.qy)));
        h = hashCombine(h, hashMix(k.cutoffBits));
        h = hashCombine(h, hashMix(k.pitchBits));
        h = hashCombine(h, hashMix(static_cast<std::uint64_t>(k.width)));
        h = hashCombine(h, hashMix(static_cast<std::uint64_t>(k.height)));
        return static_cast<std::size_t>(h);
    }
};

/** Snapshot of cache effectiveness (all cumulative except bytes/entries). */
struct PanoCacheStats
{
    std::uint64_t hits = 0;
    std::uint64_t misses = 0;       ///< renders actually performed
    std::uint64_t inflightJoins = 0; ///< waits on someone else's render
    std::uint64_t evictions = 0;
    std::uint64_t evictedBytes = 0;
    std::uint64_t bytes = 0;   ///< resident pixel bytes right now
    std::uint64_t entries = 0; ///< resident panoramas right now
    /** In-flight claims dropped by releaseClaims (session teardown). */
    std::uint64_t claimsReleased = 0;
    /** Renders whose claim was released mid-flight: the image was
     *  returned to the caller but never published or charged. */
    std::uint64_t orphanRenders = 0;
};

/**
 * Byte-budgeted, single-flight panorama cache. Thread-safe; the render
 * callback runs outside the lock (and may itself fan out on the shared
 * pool — waiters block on a condition variable, not on pool slots, so
 * there is no pool-starvation cycle).
 */
class PanoramaRenderCache
{
  public:
    using RenderFn = std::function<image::Image()>;

    explicit PanoramaRenderCache(std::size_t budgetBytes)
        : budgetBytes_(budgetBytes)
    {
    }

    PanoramaRenderCache(const PanoramaRenderCache &) = delete;
    PanoramaRenderCache &operator=(const PanoramaRenderCache &) = delete;

    /**
     * Return the panorama for @p key, rendering it via @p render on a
     * miss. Concurrent misses on the same key share one render
     * (single-flight). If @p render throws, the in-flight claim is
     * withdrawn, one waiter takes over the render, and the exception
     * propagates to the original caller.
     *
     * When @p trace carries an active causal context, the outcome is
     * stamped as a wall-interval hop: CacheLookup on a hit, CacheJoin
     * for a single-flight wait, Render around an actual render.
     *
     * @p owner charges the entry to a fleet session for eviction
     * accounting (0 = the solo/unattributed owner, the pre-fleet
     * behaviour). The charge is attributed at render time and stays
     * with the entry: sibling sessions *hit* each other's entries for
     * free, but the session that caused a render pays for its
     * residency, so one hot session cannot starve the others' budget
     * (evictLocked takes victims from the heaviest-charged owner
     * first). If the owner's claims are released while the render is
     * in flight (session teardown), the finished image is handed back
     * uncached — never published, never charged.
     */
    std::shared_ptr<const image::Image>
    getOrRender(const PanoKey &key, const RenderFn &render,
                obs::FrameTraceContext *trace = nullptr,
                std::uint32_t owner = 0);

    /**
     * Deterministic two-phase batch interface, for callers that defer
     * lookups to a synchronization barrier (the parallel fleet engine)
     * and must keep hit/miss counters independent of thread count:
     *
     *  - Phase A (serial, in a deterministic request order):
     *    `batchLookupOrClaim` classifies each request. It returns no
     *    token when the key is already resident *or* was claimed
     *    earlier in the same batch — both count as hits, matching the
     *    serial engine where each render completes synchronously
     *    before the next request arrives — and otherwise records the
     *    miss, claims the render for @p owner, and returns the claim
     *    token.
     *  - Phase B (parallel, outside the cache): render the claimed
     *    keys.
     *  - Phase C (serial, same order): `publishClaimed` installs each
     *    image under its token. Charging, LRU bookkeeping, and
     *    eviction all happen here, serially, so they are pure
     *    functions of the batch order. A token invalidated in between
     *    (releaseClaims on session teardown) counts as an orphan
     *    render, exactly like getOrRender's publish path.
     */
    std::optional<std::uint64_t>
    batchLookupOrClaim(const PanoKey &key, std::uint32_t owner);
    void publishClaimed(const PanoKey &key, std::uint64_t claimToken,
                        image::Image image);

    /**
     * Session teardown: withdraw every in-flight claim charged to
     * @p owner and wake the waiters (one of them re-claims and
     * renders). Completed entries stay resident — they are shareable
     * world-keyed data, not session state. Returns how many claims
     * were dropped. This is the fix for the claim leak when a session
     * is destroyed mid-render: without it, waiters on the orphaned
     * claim would block forever and the entry could never complete
     * nor be evicted.
     */
    std::size_t releaseClaims(std::uint32_t owner);

    /** Resident completed bytes currently charged to @p owner. */
    std::uint64_t ownerBytes(std::uint32_t owner) const;

    PanoCacheStats stats() const;

    /** Drop every completed entry (in-flight renders are unaffected). */
    void clear();

    std::size_t budgetBytes() const { return budgetBytes_; }

  private:
    struct Entry
    {
        /** Null while the owning render is in flight. */
        std::shared_ptr<const image::Image> image;
        std::uint64_t lastUse = 0;
        std::size_t bytes = 0;
        /** Session charged for this entry's residency. */
        std::uint32_t owner = 0;
        /** Claim generation: a publish is valid only if the claim it
         *  took is still the one in the map (guards releaseClaims). */
        std::uint64_t claim = 0;
    };

    /** Evict completed entries until within budget: LRU within the
     *  heaviest-charged owner (single owner == plain global LRU). */
    void evictLocked() COTERIE_REQUIRES(mutex_);

    const std::size_t budgetBytes_;
    mutable support::Mutex mutex_{"PanoramaRenderCache::mutex_"};
    support::CondVar readyCv_;
    std::unordered_map<PanoKey, Entry, PanoKeyHash>
        entries_ COTERIE_GUARDED_BY(mutex_);
    /** Resident completed bytes charged per owner (absent == 0). */
    std::unordered_map<std::uint32_t, std::uint64_t>
        ownerBytes_ COTERIE_GUARDED_BY(mutex_);
    std::uint64_t useClock_ COTERIE_GUARDED_BY(mutex_) = 0;
    std::uint64_t claimClock_ COTERIE_GUARDED_BY(mutex_) = 0;
    std::uint64_t bytes_ COTERIE_GUARDED_BY(mutex_) = 0;
    PanoCacheStats stats_ COTERIE_GUARDED_BY(mutex_);
};

} // namespace coterie::core
