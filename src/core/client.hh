/**
 * @file
 * The split-rendering client pipeline simulation shared by Multi-Furion
 * and Coterie (paper §5.1, Equation 2).
 *
 * Each display interval the client runs four tasks in parallel — FI
 * (+ near BE) rendering, decoding the prefetched BE, prefetching
 * upcoming BE frames, and FI synchronisation — then merges:
 *
 *   T = max(T_render, T_decode, T_prefetch, T_sync) + T_merge
 *
 * The prefetch term only gates the frame when the needed BE frame has
 * not arrived by consumption time; then the frame stalls until arrival.
 * Multi-Furion prefetches whole-BE panoramas every grid transition;
 * Coterie prefetches far-BE panoramas only on frame-cache misses.
 */

#pragma once

#include <memory>

#include "core/prefetcher.hh"
#include "core/systems/common.hh"

namespace coterie::core {

/** Variant switches distinguishing the split-rendering systems. */
struct SplitVariant
{
    /** true: Coterie (near/far decoupling, far-BE frames); false:
     *  Multi-Furion (whole-BE frames, FI-only local rendering). */
    bool farBeMode = true;
    /** Frame cache enabled? */
    bool useCache = true;
    /** Exact-only matching reproduces "Multi-Furion + frame cache". */
    MatchMode matchMode = MatchMode::Similar;
    /**
     * Wireless overhearing (cache Version 5, §4.6): every delivered
     * frame is inserted into every player's cache, emulating
     * promiscuous-mode reception. The paper found it adds little on
     * top of intra-player reuse and dropped it; we keep it as an
     * option for the Table 4/5 style studies.
     */
    bool overhear = false;
    ReplacementPolicy policy = ReplacementPolicy::Lru;
    PrefetcherParams prefetch{};

    static SplitVariant
    multiFurion(bool withExactCache = false)
    {
        SplitVariant v;
        v.farBeMode = false;
        v.useCache = withExactCache;
        v.matchMode = MatchMode::ExactOnly;
        v.prefetch.lookaheadSteps = 1;
        v.prefetch.lateralSpread = 0;
        return v;
    }

    static SplitVariant
    coterie(bool withCache = true)
    {
        SplitVariant v;
        v.farBeMode = true;
        v.useCache = withCache;
        v.matchMode = MatchMode::Similar;
        if (!withCache) {
            // Without a cache there is nothing to absorb neighbour
            // coverage: fetch only the predicted next grid point, as
            // Multi-Furion does (the Figure 11 "w/o cache" variant).
            v.prefetch.lookaheadSteps = 1;
            v.prefetch.lateralSpread = 0;
        }
        return v;
    }
};

/**
 * Runs the event-driven multi-client split-rendering session over the
 * shared channel and returns per-player metrics.
 *
 * @p distThresholds one reuse distance per leaf region (ignored when
 * the variant does exact matching).
 */
SystemResult runSplitSystem(const SystemConfig &config,
                            const SplitVariant &variant,
                            const std::vector<double> &distThresholds,
                            const char *systemName);

} // namespace coterie::core

