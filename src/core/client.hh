/**
 * @file
 * The split-rendering client pipeline simulation shared by Multi-Furion
 * and Coterie (paper §5.1, Equation 2).
 *
 * Each display interval the client runs four tasks in parallel — FI
 * (+ near BE) rendering, decoding the prefetched BE, prefetching
 * upcoming BE frames, and FI synchronisation — then merges:
 *
 *   T = max(T_render, T_decode, T_prefetch, T_sync) + T_merge
 *
 * The prefetch term only gates the frame when the needed BE frame has
 * not arrived by consumption time; then the frame stalls until arrival.
 * Multi-Furion prefetches whole-BE panoramas every grid transition;
 * Coterie prefetches far-BE panoramas only on frame-cache misses.
 */

#pragma once

#include <memory>

#include "core/prefetcher.hh"
#include "core/systems/common.hh"

namespace coterie::core {

/** Variant switches distinguishing the split-rendering systems. */
struct SplitVariant
{
    /** true: Coterie (near/far decoupling, far-BE frames); false:
     *  Multi-Furion (whole-BE frames, FI-only local rendering). */
    bool farBeMode = true;
    /** Frame cache enabled? */
    bool useCache = true;
    /** Exact-only matching reproduces "Multi-Furion + frame cache". */
    MatchMode matchMode = MatchMode::Similar;
    /**
     * Wireless overhearing (cache Version 5, §4.6): every delivered
     * frame is inserted into every player's cache, emulating
     * promiscuous-mode reception. The paper found it adds little on
     * top of intra-player reuse and dropped it; we keep it as an
     * option for the Table 4/5 style studies.
     */
    bool overhear = false;
    ReplacementPolicy policy = ReplacementPolicy::Lru;
    PrefetcherParams prefetch{};

    static SplitVariant
    multiFurion(bool withExactCache = false)
    {
        SplitVariant v;
        v.farBeMode = false;
        v.useCache = withExactCache;
        v.matchMode = MatchMode::ExactOnly;
        v.prefetch.lookaheadSteps = 1;
        v.prefetch.lateralSpread = 0;
        return v;
    }

    static SplitVariant
    coterie(bool withCache = true)
    {
        SplitVariant v;
        v.farBeMode = true;
        v.useCache = withCache;
        v.matchMode = MatchMode::Similar;
        if (!withCache) {
            // Without a cache there is nothing to absorb neighbour
            // coverage: fetch only the predicted next grid point, as
            // Multi-Furion does (the Figure 11 "w/o cache" variant).
            v.prefetch.lookaheadSteps = 1;
            v.prefetch.lateralSpread = 0;
        }
        return v;
    }
};

/**
 * Fleet integration callbacks, implemented by `SessionManager`. All
 * hooks are observe-only from the session's point of view: they must
 * never mutate the session's simulation state, so a run with inert
 * hooks is bit-identical to a run with none (the fleet no-op
 * contract). A null hooks pointer also disables the per-session error
 * boundary — exceptions then propagate to the caller exactly as the
 * pre-fleet code did.
 */
struct FleetHooks
{
    virtual ~FleetHooks() = default;
    /** A far-BE megaframe delivery landed at @p playerId. */
    virtual void
    onFrameFetched(std::uint32_t session, std::uint64_t gridKey,
                   int playerId, std::uint64_t bytes)
    {
        (void)session;
        (void)gridKey;
        (void)playerId;
        (void)bytes;
    }
    /** An exception escaped the session's event code and was confined
     *  by the error boundary (the session is already quarantined). */
    virtual void
    onSessionFault(std::uint32_t session, const char *what)
    {
        (void)session;
        (void)what;
    }
};

/**
 * Live deadline accounting sampled by the fleet load governor:
 * cumulative totals plus a window since the previous sample. All
 * values derive from sim-time latencies, so governor decisions made
 * from them are deterministic at any `COTERIE_THREADS`.
 */
struct LiveSlo
{
    std::uint64_t frames = 0;       ///< frames committed so far
    std::uint64_t misses = 0;       ///< of those, over 16.7 ms budget
    std::uint64_t windowFrames = 0; ///< since the previous sample
    std::uint64_t windowMisses = 0;

    double
    windowMissRate() const
    {
        return windowFrames > 0 ? static_cast<double>(windowMisses) /
                                      static_cast<double>(windowFrames)
                                : 0.0;
    }
};

/**
 * One split-rendering session as a resumable object over an
 * externally owned event queue — the unit a `SessionManager`
 * multiplexes. `runSplitSystem` below is the solo wrapper: it owns a
 * private queue, start()s, drains to the horizon, and finish()es;
 * constructing the run on a shared queue instead interleaves any
 * number of sessions deterministically (each session owns its
 * channel, server, and clients, so sibling event interleaving cannot
 * perturb its outputs).
 *
 * The fleet control surface (throttlePrefetch / forceDegrade /
 * quarantine) is sim-time driven and inert until invoked; a run on
 * which none of it is exercised is bit-identical to the pre-fleet
 * code path.
 */
class SplitSystemRun
{
  public:
    /**
     * Binds the run to @p queue and builds all session state (channel,
     * server, clients, tracer). @p config/@p variant/@p distThresholds
     * are copied; the pointers inside @p config (world, grid, frames,
     * traces, faults) must outlive the run. @p systemName must be a
     * static literal. @p hooks (optional) arms the fleet callbacks and
     * the per-session error boundary; @p fleetSession is the owning
     * manager's session id (0 for solo runs).
     */
    SplitSystemRun(sim::EventQueue &queue, const SystemConfig &config,
                   const SplitVariant &variant,
                   const std::vector<double> &distThresholds,
                   const char *systemName, FleetHooks *hooks = nullptr,
                   std::uint32_t fleetSession = 0);
    ~SplitSystemRun();

    SplitSystemRun(const SplitSystemRun &) = delete;
    SplitSystemRun &operator=(const SplitSystemRun &) = delete;

    /** Schedule the per-client frame loops, staggered from now(). */
    void start();

    /**
     * The sim-time settle margin after the trace ends that the solo
     * wrapper drains before assembling results; a manager finalizes a
     * session at start + durationMs() + settleMs() for the same
     * trailing-delivery cutoff the solo horizon applies.
     */
    double durationMs() const;
    static constexpr double settleMs() { return 1000.0; }

    /**
     * Assemble the per-player metrics (and frame logs when recorded),
     * publishing the SLO summary if the label is not already frozen.
     * Call once, after the horizon (solo) or at the session's
     * completion instant (fleet).
     */
    SystemResult finish();

    // --- Fleet control surface (deterministic, call from sim events).

    /** Shed level 1: restrict speculative prefetch to the single
     *  predicted next grid point (PrefetcherParams::conservative). */
    void throttlePrefetch(bool on);

    /** Shed level 2: substitute the newest stale cached panorama
     *  immediately on a miss (the PR 4 degradation path with a zero
     *  stall threshold) instead of stalling for it. */
    void forceDegrade(bool on);

    /**
     * Quarantine the session at the current sim time: cancel every
     * outstanding fetch (`ResilientFetcher::cancelAll`), abort live
     * causal records, stop the frame loops, and freeze the SLO label
     * by publishing the tracer summary now. Idempotent. The caller
     * (manager) releases the session's pano-cache claims.
     */
    void quarantine();

    /** Quiet stop at end of horizon: no further state changes, no
     *  fault accounting. finish() remains valid. */
    void shutdown();

    bool quarantined() const;
    /** True when the error boundary confined an escaped exception. */
    bool faulted() const;
    const std::string &faultReason() const;

    /** Governor sampling: cumulative + since-last-sample deadline
     *  accounting (resets the window). */
    LiveSlo sampleSlo();

    std::uint64_t framesDisplayed() const;
    int players() const;
    /** The frame-trace / SLO label (`<tag>/<N>p/<system>[+chaos]`). */
    const std::string &label() const;

  private:
    struct Impl;
    std::unique_ptr<Impl> impl_;
};

/**
 * Runs the event-driven multi-client split-rendering session over the
 * shared channel and returns per-player metrics.
 *
 * @p distThresholds one reuse distance per leaf region (ignored when
 * the variant does exact matching).
 */
SystemResult runSplitSystem(const SystemConfig &config,
                            const SplitVariant &variant,
                            const std::vector<double> &distThresholds,
                            const char *systemName);

} // namespace coterie::core

