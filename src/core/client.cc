#include "core/client.hh"

#include "sim/event_queue.hh"

#include <algorithm>
#include <cmath>
#include <deque>
#include <optional>
#include <stdexcept>
#include <unordered_map>
#include <unordered_set>

#include "net/endpoints.hh"
#include "net/resilience.hh"
#include "obs/flight.hh"
#include "obs/frame_trace.hh"
#include "obs/metrics.hh"
#include "obs/trace.hh"
#include "render/cost_model.hh"
#include "support/logging.hh"

namespace coterie::core {

using geom::Vec2;
using sim::TimeMs;
using world::GridPoint;

namespace {

/** Causal identity of one outstanding fetch plus when it was queued
 *  on the client pipe (for the PipeWait hop). */
struct FetchTrace
{
    obs::FrameTraceContext ctx;
    TimeMs enqueuedAt = 0.0;
};

/** Runtime state of one split-rendering client. */
struct ClientState
{
    int playerId = 0;
    const trace::PlayerTrace *trace = nullptr;
    std::unique_ptr<FrameCache> cache;        // similar/exact match store
    /**
     * Per-client request pipe: one transfer on the wire at a time (a
     * single TCP stream to the server), later requests queue FIFO.
     * This is what bounds channel concurrency to the player count and
     * produces the paper's N-fold transfer-latency scaling.
     * Capped at 6 entries — request_frame drops the most speculative
     * tail beyond that.
     */
    std::deque<FrameCache::Key> pipe;
    std::unordered_set<std::uint64_t> requested; // queued or in flight
    bool wireBusy = false;
    std::unordered_map<std::uint64_t, TimeMs> arrived; // no-cache store
    GridPoint lastGrid{-1, -1};
    geom::Vec2 lastPos;
    bool hasLastPos = false;
    TimeMs lastDisplay = 0.0;
    bool stalled = false;
    TimeMs stallStart = 0.0;
    std::uint64_t deliveries = 0;      // total frames delivered
    std::uint64_t stallBaseline = 0;   // deliveries when stall began

    // Causal tracing: live fetch contexts by grid key, and the context
    // of the most recent completed delivery (what a stalled frame
    // links to when any fresh arrival unblocks it).
    std::unordered_map<std::uint64_t, FetchTrace> fetchTraces;
    obs::FrameTraceContext lastFetchDone;

    // Resilience / chaos state (inert on a clean run: fetcher null,
    // connected always true, every counter stays zero).
    std::unique_ptr<net::ResilientFetcher> fetcher;
    bool connected = true;
    std::uint64_t stallCount = 0;
    double stallMs = 0.0; // total frozen time across stalls
    std::uint64_t framesDegraded = 0;
    TimeMs lastDegradeAt = -1e18; // streak: consecutive degraded ticks
    std::uint64_t disconnects = 0;
    std::uint64_t rejoins = 0;
    TimeMs rejoinAt = -1.0;        // last rejoin instant (-1 = never)
    std::uint64_t probeFrames = 0; // displays inside the probe window
    std::uint64_t probeHits = 0;   // of those, clean (no stall/degrade)

    // Accumulators.
    RunningStats interFrame;
    RunningStats responsiveness;
    RunningStats transferLatency;
    RunningStats renderMs;
    RunningStats fetchedKb;
    std::uint64_t framesDisplayed = 0;
    std::uint64_t framesFetched = 0;
    std::uint64_t gridTransitions = 0;
    std::uint64_t bytesFetched = 0;
};

/** Trace pose at an absolute sim time. */
const trace::TracePoint &
poseAt(const trace::PlayerTrace &trace, TimeMs now, double tickMs)
{
    const auto idx = static_cast<std::size_t>(std::max(0.0, now / tickMs));
    return trace.points[std::min(idx, trace.points.size() - 1)];
}

} // namespace

/**
 * All session state that used to live as locals of runSplitSystem.
 * Construction order (channel -> server -> fault driver -> fi-sync ->
 * prefetcher -> tracer -> clients) matches the original function so
 * every seeded substream draws identically.
 */
struct SplitSystemRun::Impl
{
    Impl(sim::EventQueue &q, const SystemConfig &cfg,
         const SplitVariant &var, const std::vector<double> &thresholds,
         const char *name, FleetHooks *h, std::uint32_t fleetId);

    // --- The event-loop bodies (formerly local lambdas).
    double threshFor(std::uint32_t leafId) const;
    bool frameAvailable(ClientState &c, const FrameCache::Key &key);
    void pump(ClientState &c);
    void onDelivered(ClientState &c, const FrameCache::Key &key,
                     TimeMs issued, std::uint64_t deliveredKey, TimeMs at);
    void onFailed(ClientState &c, std::uint64_t failedKey, TimeMs at);
    void requestFrame(ClientState &c, const FrameCache::Key &key,
                      bool urgent = false);
    void display(int pid, double frameTime, double latency, double render,
                 bool hit, obs::FrameTraceContext fctx, double readyAt);
    void scheduleFrame(int pid);

    void start();
    SystemResult finish();
    void quarantineAt(TimeMs now);
    void confineFault(const char *what);

    /**
     * Error boundary for event thunks: with hooks armed, an exception
     * escaping @p fn quarantines this session and notifies the
     * manager instead of unwinding the shared event loop. Without
     * hooks the thunk is passed through untouched (solo behaviour:
     * exceptions propagate to the caller).
     */
    template <typename Fn>
    sim::EventFn
    guard(Fn fn)
    {
        if (hooks == nullptr)
            return fn;
        return [this, fn = std::move(fn)]() mutable {
            try {
                fn();
            } catch (const std::exception &e) {
                confineFault(e.what());
            } catch (...) {
                confineFault("non-standard exception");
            }
        };
    }

    /** As guard(), for (key, time) delivery/failure callbacks. */
    template <typename Fn>
    std::function<void(std::uint64_t, TimeMs)>
    guardCb(Fn fn)
    {
        return [this, fn = std::move(fn)](std::uint64_t k,
                                          TimeMs at) mutable {
            if (hooks == nullptr) {
                fn(k, at);
                return;
            }
            try {
                fn(k, at);
            } catch (const std::exception &e) {
                confineFault(e.what());
            } catch (...) {
                confineFault("non-standard exception");
            }
        };
    }

    // --- Immutable run inputs.
    SystemConfig config;
    SplitVariant variant;
    std::vector<double> distThresholds;
    const char *systemName;
    FleetHooks *hooks;
    std::uint32_t fleetSession;

    sim::EventQueue &queue;
    const world::VirtualWorld &world;
    const world::GridMap &grid;
    const RegionIndex &regions;
    const FrameStore &frames;
    const trace::SessionTrace &traces;
    int players;
    double duration;
    const sim::FaultPlan *faults;

    // --- Session actors, in original construction order.
    net::SharedChannel channel;
    net::FrameServer server;
    std::optional<sim::FaultDriver> faultDriver;
    net::FiSync fiSync;
    Prefetcher prefetcher;
    /** Shed-mode prefetcher: single predicted next point only. */
    Prefetcher conservativePrefetcher;
    obs::FrameTracer tracer;
    double decodeMs;
    std::vector<ClientState> clients;

    // --- Run lifecycle / fleet state (all inert on a solo run).
    /** Shared-clock time when start() ran: the session's time origin.
     *  Trace sampling and the run horizon are relative to it, so a
     *  session admitted from the fleet wait queue mid-simulation plays
     *  its trace from the beginning. Zero on a solo run. */
    TimeMs startAt = 0.0;
    std::uint64_t degradedTotal = 0;
    bool stopped = false;       ///< no further session activity
    bool isQuarantined = false; ///< stopped via quarantine()
    bool isFaulted = false;     ///< stopped via the error boundary
    std::string faultReason;
    bool tracerFinished = false;
    bool finished = false;
    bool throttled = false;     ///< shed level 1: conservative prefetch
    bool forceDegrade = false;  ///< shed level 2: immediate stale subst.
    LiveSlo slo;
    std::vector<std::vector<FrameLogEntry>> frameLogs;
};

SplitSystemRun::Impl::Impl(sim::EventQueue &q, const SystemConfig &cfg,
                           const SplitVariant &var,
                           const std::vector<double> &thresholds,
                           const char *name, FleetHooks *h,
                           std::uint32_t fleetId)
    : config(cfg), variant(var), distThresholds(thresholds),
      systemName(name), hooks(h), fleetSession(fleetId), queue(q),
      world(*cfg.world), grid(*cfg.grid), regions(*cfg.regions),
      frames(*cfg.frames), traces(*cfg.traces),
      players(traces.playerCount()), duration(traces.durationMs()),
      // A null or empty fault plan collapses every chaos hook to the
      // pre-chaos code path (the strict no-op contract).
      faults((cfg.faults != nullptr && !cfg.faults->empty()) ? cfg.faults
                                                             : nullptr),
      channel(queue, config.channel, faults),
      server(
          queue, channel,
          [this](std::uint64_t key) {
              const GridPoint g{
                  static_cast<std::int64_t>(
                      key % static_cast<std::uint64_t>(grid.cols())),
                  static_cast<std::int64_t>(
                      key / static_cast<std::uint64_t>(grid.cols()))};
              return variant.farBeMode ? frames.farBeBytes(g)
                                       : frames.wholeBeBytes(g);
          },
          config.serverNet, faults),
      fiSync(config.fiSync, 11),
      prefetcher(world, grid, regions, variant.prefetch),
      conservativePrefetcher(world, grid, regions,
                             variant.prefetch.conservative()),
      // Causal frame tracer: one per run, always on (observe-only;
      // every exported value is sim-derived so determinism is
      // unaffected). The label keys the SLO summary published at
      // finish(). Chaos runs get their own label so a clean run and a
      // fault run of the same session never merge their frame records
      // (frame numbers repeat across runs) in the SLO registry or
      // trace_report.
      tracer((config.sessionTag.empty() ? std::string("session")
                                        : config.sessionTag) +
             "/" + std::to_string(players) + "p/" + systemName +
             (config.faults != nullptr ? "+chaos" : "")),
      decodeMs(device::decodeMs(config.profile, frames.params().panoWidth,
                                frames.params().panoHeight)),
      clients(static_cast<std::size_t>(players))
{
    if (faults) {
        faultDriver.emplace(queue, *faults, config.sessionTag);
        faultDriver->arm();
    }
    for (int p = 0; p < players; ++p) {
        clients[p].playerId = p;
        clients[p].trace = &traces.players[p];
        if (variant.useCache) {
            FrameCacheParams cp;
            cp.capacityBytes = config.profile.cacheBudgetBytes;
            cp.policy = variant.policy;
            cp.mode = variant.matchMode;
            // Bucket edge ~ the largest reuse distance in force.
            double max_thresh = 0.5;
            for (double t : distThresholds)
                max_thresh = std::max(max_thresh, t);
            cp.bucketEdge = std::max(1.0, max_thresh);
            clients[p].cache = std::make_unique<FrameCache>(cp);
        }
        if (config.resilience.enabled) {
            net::ResilienceParams rp = config.resilience;
            // Independent jitter substream per client.
            rp.seed = hashCombine(config.resilience.seed,
                                  static_cast<std::uint64_t>(p) + 1);
            clients[p].fetcher = std::make_unique<net::ResilientFetcher>(
                queue, server, rp);
        }
    }
    if (config.recordFrameLog)
        frameLogs.resize(static_cast<std::size_t>(players));
}

double
SplitSystemRun::Impl::threshFor(std::uint32_t leafId) const
{
    return leafId < distThresholds.size() ? distThresholds[leafId] : 0.0;
}

// Is the BE frame for grid point g usable right now?
bool
SplitSystemRun::Impl::frameAvailable(ClientState &c,
                                     const FrameCache::Key &key)
{
    if (c.cache)
        return c.cache->lookup(key, threshFor(key.leafRegionId))
            .has_value();
    return c.arrived.count(key.gridKey) > 0;
}

void
SplitSystemRun::Impl::onDelivered(ClientState &c,
                                  const FrameCache::Key &key,
                                  TimeMs issued,
                                  std::uint64_t delivered_key, TimeMs at)
{
    if (stopped)
        return;
    c.requested.erase(delivered_key);
    c.wireBusy = false;
    const GridPoint g{
        static_cast<std::int64_t>(
            delivered_key % static_cast<std::uint64_t>(grid.cols())),
        static_cast<std::int64_t>(
            delivered_key / static_cast<std::uint64_t>(grid.cols()))};
    const std::uint64_t bytes = variant.farBeMode ? frames.farBeBytes(g)
                                                  : frames.wholeBeBytes(g);
    c.transferLatency.add(at - issued);
    c.fetchedKb.add(static_cast<double>(bytes) / 1024.0);
    c.bytesFetched += bytes;
    ++c.framesFetched;
    ++c.deliveries;
    if (auto ft = c.fetchTraces.find(delivered_key);
        ft != c.fetchTraces.end()) {
        tracer.complete(ft->second.ctx, at);
        c.lastFetchDone = ft->second.ctx;
        c.fetchTraces.erase(ft);
    }
    if (c.cache) {
        c.cache->insert(key, static_cast<std::uint32_t>(bytes));
    } else {
        c.arrived.emplace(delivered_key, at);
    }
    if (variant.overhear) {
        // Promiscuous mode: every station receives the frame.
        for (ClientState &other : clients) {
            if (&other != &c && other.cache) {
                other.cache->insert(key,
                                    static_cast<std::uint32_t>(bytes));
            }
        }
    }
    if (hooks)
        hooks->onFrameFetched(fleetSession, delivered_key, c.playerId,
                              bytes);
    pump(c);
}

void
SplitSystemRun::Impl::onFailed(ClientState &c, std::uint64_t failed_key,
                               TimeMs at)
{
    if (stopped)
        return;
    // Give-up after maxAttempts: free the request pipe and move on —
    // the stall path degrades to the newest stale panorama and
    // re-requests later.
    c.requested.erase(failed_key);
    c.wireBusy = false;
    if (auto ft = c.fetchTraces.find(failed_key);
        ft != c.fetchTraces.end()) {
        tracer.abort(ft->second.ctx, at);
        c.fetchTraces.erase(ft);
    }
    COTERIE_COUNT("client.fetch_giveups");
    pump(c);
}

// Put the next queued request of client c on the wire.
void
SplitSystemRun::Impl::pump(ClientState &c)
{
    if (stopped || c.wireBusy || c.pipe.empty() || !c.connected)
        return;
    const FrameCache::Key key = c.pipe.front();
    c.pipe.pop_front();
    c.wireBusy = true;
    const TimeMs issued = queue.now();
    // Time spent queued behind earlier requests on this client's
    // single TCP stream is a causal hop of its own.
    obs::FrameTraceContext fctx;
    if (auto ft = c.fetchTraces.find(key.gridKey);
        ft != c.fetchTraces.end()) {
        fctx = ft->second.ctx;
        if (issued > ft->second.enqueuedAt)
            fctx.hop(obs::Hop::PipeWait, ft->second.enqueuedAt, issued);
    }
    auto on_delivered = guardCb(
        [this, &c, key, issued](std::uint64_t delivered_key, TimeMs at) {
            onDelivered(c, key, issued, delivered_key, at);
        });
    if (c.fetcher) {
        c.fetcher->fetch(key.gridKey, fctx, std::move(on_delivered),
                         guardCb([this, &c](std::uint64_t failed_key,
                                            TimeMs at) {
                             onFailed(c, failed_key, at);
                         }));
    } else {
        net::RequestOptions ropts;
        ropts.trace = fctx;
        server.request(key.gridKey, std::move(on_delivered),
                       std::move(ropts));
    }
}

// Enqueue a frame request; @p urgent puts it at the head of the
// pipe (a stalled display needs it before speculative prefetches).
void
SplitSystemRun::Impl::requestFrame(ClientState &c,
                                   const FrameCache::Key &key, bool urgent)
{
    if (c.requested.count(key.gridKey))
        return;
    c.requested.insert(key.gridKey);
    const TimeMs now = queue.now();
    // Mint the fetch's causal record at the moment of request; the
    // origin hop says why it exists (urgent on-demand request vs
    // speculative cover-set prefetch).
    obs::FrameTraceContext ctx = tracer.mint(
        obs::FrameTracer::Kind::Fetch,
        static_cast<std::uint16_t>(c.playerId), key.gridKey, now);
    ctx.hop(urgent ? obs::Hop::Request : obs::Hop::Prefetch, now, now);
    c.fetchTraces[key.gridKey] = FetchTrace{ctx, now};
    if (urgent)
        c.pipe.push_front(key);
    else
        c.pipe.push_back(key);
    // Bound speculative backlog: drop the most speculative tail.
    while (c.pipe.size() > 6) {
        const std::uint64_t dropped = c.pipe.back().gridKey;
        c.requested.erase(dropped);
        if (auto ft = c.fetchTraces.find(dropped);
            ft != c.fetchTraces.end()) {
            tracer.abort(ft->second.ctx, now);
            c.fetchTraces.erase(ft);
        }
        c.pipe.pop_back();
    }
    pump(c);
}

// Shared display epilogue: commit a frame after @p frame_time,
// record its latency, fold rejoin-probe accounting (@p hit = the
// frame was served without stall or degradation), then loop.
void
SplitSystemRun::Impl::display(int pid, double frame_time, double latency,
                              double render, bool hit,
                              obs::FrameTraceContext fctx, double readyAt)
{
    // The wake revalidates via `stopped` (set at quarantine/shutdown;
    // the Impl outlives the queue run by contract).
    queue.scheduleIn( // lint:allow(epoch-guarded-schedule)
        frame_time,
        guard([this, pid, latency, render, hit, fctx, readyAt]() mutable {
            if (stopped)
                return;
            ClientState &cc = clients[pid];
            const TimeMs done = queue.now();
            // Stamp any vsync padding as the Display hop, then
            // complete the causal record at content-ready time (the
            // Equation-2 latency point) so the deadline scoreboard
            // judges the same latency the QoE model reports below.
            if (done > readyAt)
                tracer.hop(fctx, obs::Hop::Display, readyAt, done);
            tracer.complete(fctx, readyAt);
            cc.interFrame.add(done - cc.lastDisplay);
            cc.responsiveness.add(config.sensorMs + latency);
            cc.renderMs.add(render);
            cc.lastDisplay = done;
            ++cc.framesDisplayed;
            COTERIE_COUNT("client.frames_displayed");
            // Simulated per-frame latency, comparable against the
            // 16.7 ms QoE budget (Equation 2 / Table 6).
            COTERIE_OBSERVE("client.frame_latency_sim_ms", latency);
            // Live deadline accounting for the fleet governor, and
            // the optional frame-output log. Both observe-only.
            ++slo.frames;
            ++slo.windowFrames;
            if (latency > obs::kFrameBudgetMs) {
                ++slo.misses;
                ++slo.windowMisses;
            }
            if (config.recordFrameLog) {
                FrameLogEntry entry;
                entry.displayMs = done;
                entry.latencyMs = latency;
                entry.renderMs = render;
                entry.bytesFetched = cc.bytesFetched;
                entry.degraded = !hit;
                frameLogs[static_cast<std::size_t>(pid)].push_back(entry);
            }
            if (cc.rejoinAt >= 0.0) {
                const double lo =
                    cc.rejoinAt + config.resilience.rejoinSettleMs;
                if (done >= lo &&
                    done < lo + config.resilience.rejoinProbeMs) {
                    ++cc.probeFrames;
                    if (hit)
                        ++cc.probeHits;
                }
            }
            scheduleFrame(pid);
        }));
}

void
SplitSystemRun::Impl::scheduleFrame(int pid)
{
    if (stopped)
        return;
    ClientState &c = clients[pid];
    const TimeMs now = queue.now();
    // Session-relative time: trace playback and the run horizon are
    // measured from start() so queued fleet admissions replay their
    // trace from the beginning. Identical to `now` on a solo run.
    const TimeMs t = now - startAt;
    if (t >= duration)
        return;
    if (config.injectFaultAtMs >= 0.0 && t >= config.injectFaultAtMs) {
        // Fleet error-boundary test hook (SystemConfig docs): confined
        // by guard() under a manager, propagates on a solo run.
        throw std::runtime_error("injected session fault");
    }

    if (faults != nullptr && faults->disconnected(pid, now)) {
        if (c.connected) {
            // Scripted WLAN drop: the association resets — every
            // in-flight fetch aborts, the request pipe clears, a
            // stall in progress is abandoned.
            c.connected = false;
            ++c.disconnects;
            COTERIE_COUNT("client.disconnects");
            if (c.fetcher)
                c.fetcher->cancelAll();
            // Cancelled fetches never call back: close out their
            // causal records as aborted at the drop instant.
            for (auto &[fk, ft] : c.fetchTraces)
                tracer.abort(ft.ctx, now);
            c.fetchTraces.clear();
            c.pipe.clear();
            c.requested.clear();
            c.wireBusy = false;
            if (c.stalled) {
                // The abandoned stall's frozen time still counts.
                c.stallMs += now - c.stallStart;
                c.stalled = false;
            }
        }
        const TimeMs rejoin = faults->reconnectsAt(pid, now);
        // scheduleFrame revalidates via `stopped` on wake.
        if (rejoin < startAt + duration)
            queue.scheduleAt(rejoin, // lint:allow(epoch-guarded-schedule)
                             guard([this, pid] { scheduleFrame(pid); }));
        return;
    }

    const trace::TracePoint &pose = poseAt(*c.trace, t, traces.tickMs);
    const GridPoint g = grid.snap(pose.position);
    const FrameCache::Key key = prefetcher.keyFor(g);
    if (c.cache)
        c.cache->setPlayerPosition(pose.position);

    if (!c.connected) {
        // Back on the WLAN: before resuming the frame loop,
        // re-sync the cover set through the prefetcher (the
        // movement heading went stale while offline, so cover all
        // directions in one burst).
        c.connected = true;
        ++c.rejoins;
        c.rejoinAt = now;
        COTERIE_COUNT("client.rejoins");
        obs::TraceRecorder::global().instant("client.rejoin", "fault",
                                             now);
        c.lastGrid = GridPoint{-1, -1};
        for (const PrefetchTarget &t : prefetcher.resyncTargets(
                 g, pose.position, c.cache.get(), distThresholds)) {
            requestFrame(c, prefetcher.keyFor(t.point));
        }
    }

    // New grid point: issue prefetches for the upcoming cover set.
    // The prefetch direction follows the player's *movement* (which
    // Furion observes to be predictable), not the noisy gaze yaw.
    double heading = pose.yaw;
    if (c.hasLastPos) {
        const geom::Vec2 delta = pose.position - c.lastPos;
        if (delta.lengthSq() > 1e-12)
            heading = delta.angle();
    }
    c.lastPos = pose.position;
    c.hasLastPos = true;
    if (!(g == c.lastGrid)) {
        ++c.gridTransitions;
        c.lastGrid = g;
        // Shed level 1 swaps in the conservative cover set (next
        // predicted point only) — fewer speculative fetches while the
        // fleet is overloaded.
        const Prefetcher &pf =
            throttled ? conservativePrefetcher : prefetcher;
        const auto targets = pf.misses(g, pose.position, heading,
                                       c.cache.get(), distThresholds);
        for (const PrefetchTarget &t : targets) {
            if (!c.cache && c.arrived.count(t.gridKey))
                continue; // already fetched earlier
            requestFrame(c, prefetcher.keyFor(t.point));
        }
    }

    // Compute this frame's latency (Equation 2).
    const double cutoff = regions.cutoffAt(pose.position);
    const double render =
        variant.farBeMode
            ? config.rtFiMs + render::renderTimeMs(world, pose.position,
                                                   0.0, cutoff,
                                                   config.profile.cost)
            : config.rtFiMs;
    // FI sync rides the same WLAN: scripted loss bursts hit it too,
    // and an outage (bandwidth factor 0) loses every tick. With no
    // faults the 0-loss overload draws the identical rng stream.
    const double fi_loss =
        faults != nullptr
            ? (faults->bandwidthFactor(now) <= 0.0
                   ? 1.0
                   : std::min(1.0, faults->extraLossProbability(now)))
            : 0.0;
    const double sync =
        players > 1 ? fiSync.syncLatencyMs(players, fi_loss) : 0.0;
    const double core = std::max({render, decodeMs, sync});

    // A stalled frame unblocks either when the exact BE arrives or
    // when any fresh delivery lands: the client then displays with
    // the newest (possibly one-grid-point stale) panorama, exactly
    // what lets the real Multi-Furion degrade to ~45 FPS instead of
    // freezing. The slight BE staleness is why its measured SSIM
    // trails Coterie's (Table 7).
    const bool was_stalled = c.stalled;
    const bool unblocked = c.stalled && c.deliveries > c.stallBaseline;
    if (unblocked || frameAvailable(c, key)) {
        // A frame that stalled waiting for the network already ran
        // its parallel tasks during the wait; only the merge
        // remains (decode streams during the transfer). Fresh
        // frames pay the full Equation-2 pipeline, padded to the
        // display refresh interval.
        double frame_time, latency, ready_at;
        obs::FrameTraceContext fctx;
        if (c.stalled) {
            // Pad to the display refresh: a short stall still
            // cannot beat vsync.
            const double waited = now - c.stallStart;
            c.stallMs += waited;
            frame_time = std::max(config.mergeMs, config.tickMs - waited);
            latency = waited + config.mergeMs;
            c.stalled = false;
            // The frame's causal story began when the stall did;
            // link it to the delivery that unblocked it so the
            // critical path can descend into the fetch.
            fctx = tracer.mint(obs::FrameTracer::Kind::Frame,
                               static_cast<std::uint16_t>(pid),
                               c.framesDisplayed, c.stallStart);
            fctx.hop(obs::Hop::StallWait, c.stallStart, now);
            if (c.lastFetchDone.active())
                tracer.link(fctx, c.lastFetchDone);
            fctx.hop(obs::Hop::Merge, now, now + config.mergeMs);
            ready_at = now + config.mergeMs;
        } else {
            const double pipeline = core + config.mergeMs;
            frame_time = std::max(config.tickMs, pipeline);
            latency = pipeline;
            // Fresh frame: the Equation-2 parallel tasks (FI/far
            // render, BE decode, FI sync) then the serial merge.
            fctx = tracer.mint(obs::FrameTracer::Kind::Frame,
                               static_cast<std::uint16_t>(pid),
                               c.framesDisplayed, now);
            fctx.hop(obs::Hop::Render, now, now + render);
            fctx.hop(obs::Hop::Decode, now, now + decodeMs);
            if (sync > 0.0)
                fctx.hop(obs::Hop::Sync, now, now + sync);
            fctx.hop(obs::Hop::Merge, now + core, now + pipeline);
            ready_at = now + pipeline;
        }
        display(pid, frame_time, latency, render, !was_stalled, fctx,
                ready_at);
    } else {
        // Stall: the needed frame is missing. Ensure it is on the
        // wire, then poll for its arrival (cheap 1 ms poll).
        if (!c.stalled) {
            c.stalled = true;
            c.stallStart = now;
            c.stallBaseline = c.deliveries;
            ++c.stallCount;
            COTERIE_COUNT("client.stalls");
        }
        const double waited = now - c.stallStart;
        // Reprojection-style streak: the degradeAfterMs threshold
        // is paid once per miss, not per frame — while the urgent
        // fetch stays outstanding, subsequent ticks keep re-showing
        // the stale panorama at display cadence instead of
        // re-freezing for another threshold.
        const bool degrade_streak =
            now - c.lastDegradeAt <= config.tickMs * 1.5;
        // Shed level 2 (forceDegrade) is the same degradation path
        // with a zero stall threshold, available even without a
        // resilient fetcher: under fleet overload a stale panorama
        // now beats a fresh one later.
        const bool can_degrade =
            (c.fetcher != nullptr || forceDegrade) && c.cache != nullptr;
        const double degrade_after =
            forceDegrade ? 0.0 : config.resilience.degradeAfterMs;
        if (can_degrade && (waited >= degrade_after || degrade_streak) &&
            c.cache->entryCount() > 0) {
            // Graceful degradation: rather than freezing on the
            // missing megaframe, re-display the newest cached
            // panorama (frame similarity makes the stale far BE
            // perceptually close) and account a *degraded* frame.
            // The urgent fetch stays in flight and repairs the
            // cache when it lands.
            ++c.framesDegraded;
            ++degradedTotal;
            c.stallMs += waited;
            c.lastDegradeAt = now;
            COTERIE_COUNT("qoe.degraded_frames");
            obs::TraceRecorder::global().counter(
                "qoe.degraded_frames",
                static_cast<double>(degradedTotal));
            c.stalled = false;
            const double frame_time =
                std::max(config.mergeMs, config.tickMs - waited);
            const double latency = waited + config.mergeMs;
            // Degraded frame: waited, then merged a stale panorama
            // (no unblocking delivery to link — the urgent repair
            // fetch is still in flight).
            obs::FrameTraceContext fctx = tracer.mint(
                obs::FrameTracer::Kind::Frame,
                static_cast<std::uint16_t>(pid), c.framesDisplayed,
                c.stallStart);
            fctx.hop(obs::Hop::StallWait, c.stallStart, now);
            fctx.hop(obs::Hop::Merge, now, now + config.mergeMs);
            requestFrame(c, key, /*urgent=*/true);
            display(pid, frame_time, latency, render,
                    /*hit=*/false, fctx, now + config.mergeMs);
            return;
        }
        requestFrame(c, key, /*urgent=*/true);
        // scheduleFrame revalidates via `stopped` on wake.
        queue.scheduleIn( // lint:allow(epoch-guarded-schedule)
            1.0, guard([this, pid] { scheduleFrame(pid); }));
    }
}

void
SplitSystemRun::Impl::start()
{
    startAt = queue.now();
    for (int p = 0; p < players; ++p) {
        // Stagger starts by a fraction of a tick like real headsets.
        // scheduleFrame revalidates via `stopped` on wake.
        queue.scheduleIn(p * 2.1, // lint:allow(epoch-guarded-schedule)
                         guard([this, p] { scheduleFrame(p); }));
    }
}

void
SplitSystemRun::Impl::quarantineAt(TimeMs now)
{
    if (isQuarantined)
        return;
    isQuarantined = true;
    stopped = true;
    for (ClientState &c : clients) {
        if (c.fetcher)
            c.fetcher->cancelAll();
        for (auto &[fk, ft] : c.fetchTraces)
            tracer.abort(ft.ctx, now);
        c.fetchTraces.clear();
        c.pipe.clear();
        c.requested.clear();
        c.wireBusy = false;
        if (c.stalled) {
            c.stallMs += now - c.stallStart;
            c.stalled = false;
        }
    }
    // Freeze the SLO label: publish the summary as of the quarantine
    // instant — later events in sibling sessions can no longer move it.
    if (!tracerFinished) {
        tracer.finish();
        tracerFinished = true;
    }
    COTERIE_COUNT("fleet.session_quarantined");
    obs::flight::recordInstant("fleet.session_quarantined", "fleet", now);
}

void
SplitSystemRun::Impl::confineFault(const char *what)
{
    isFaulted = true;
    faultReason = what != nullptr ? what : "";
    quarantineAt(queue.now());
    COTERIE_COUNT("fleet.session_faulted");
    if (hooks)
        hooks->onSessionFault(fleetSession, faultReason.c_str());
}

SystemResult
SplitSystemRun::Impl::finish()
{
    COTERIE_ASSERT(!finished, "SplitSystemRun::finish called twice");
    finished = true;

    // Export the causal frame records (sim-timeline trace events when
    // recording) and publish the per-session SLO summary — unless a
    // quarantine already froze the label.
    if (!tracerFinished) {
        tracer.finish();
        tracerFinished = true;
    }

    SystemResult result;
    result.systemName = systemName;
    result.durationMs = duration;
    // Mean utilised throughput over this session's own run window. The
    // channel's queue-clock variant would read the *fleet* clock here,
    // which differs from the solo clock by the finalize nudge and by
    // any admission delay before the session started.
    const double elapsedMs = duration + SplitSystemRun::settleMs();
    result.channelUtilMbps =
        elapsedMs > 0.0 ? static_cast<double>(channel.bytesDelivered()) *
                              8.0 / 1e3 / elapsedMs
                        : 0.0;
    for (ClientState &c : clients) {
        PlayerMetrics m;
        m.playerId = c.playerId;
        m.framesDisplayed = c.framesDisplayed;
        m.framesFetched = c.framesFetched;
        m.gridTransitions = c.gridTransitions;
        m.fps = duration > 0.0
                    ? static_cast<double>(c.framesDisplayed) /
                          (duration / 1000.0)
                    : 0.0;
        m.interFrameMs = c.interFrame.mean();
        m.responsivenessMs = c.responsiveness.mean();
        m.netDelayMs = c.transferLatency.mean();
        m.frameKb = c.fetchedKb.mean();
        m.renderMsPerFrame = c.renderMs.mean();
        m.beMbps = duration > 0.0
                       ? static_cast<double>(c.bytesFetched) * 8.0 /
                             (duration / 1000.0) / 1e6
                       : 0.0;
        m.fiKbps =
            fiSync.bandwidthKbps(players) / std::max(1, players);
        m.cacheHitRatio =
            c.gridTransitions
                ? std::max(0.0,
                           1.0 - static_cast<double>(c.framesFetched) /
                                     static_cast<double>(
                                         c.gridTransitions))
                : 0.0;
        if (c.cache)
            m.cacheStats = c.cache->stats();
        m.stalls = c.stallCount;
        m.stallMs = c.stallMs;
        m.framesDegraded = c.framesDegraded;
        m.disconnects = c.disconnects;
        m.rejoins = c.rejoins;
        if (c.fetcher) {
            m.netRetries = c.fetcher->stats().retries;
            m.netTimeouts = c.fetcher->stats().timeouts;
            m.fetchGiveups = c.fetcher->stats().failures;
        }
        m.rejoinHitRatio =
            c.probeFrames > 0
                ? static_cast<double>(c.probeHits) /
                      static_cast<double>(c.probeFrames)
                : -1.0;
        m.gpuPct = device::gpuLoadPct(config.profile, m.renderMsPerFrame,
                                      std::min(m.fps, 60.0));
        device::CpuLoadInputs cpu_in;
        cpu_in.networkMbps = m.beMbps;
        cpu_in.decodeFps = std::min(m.fps, 60.0);
        cpu_in.syncHz = players > 1 ? 60.0 : 0.0;
        cpu_in.rendering = true;
        m.cpuPct = device::cpuLoadPct(config.profile, cpu_in);
        // Split-rendering pipeline CPU work the generic model does not
        // carry: texture upload + merge (both modes), plus cache and
        // near-BE draw submission for Coterie (calibrated to Table 8).
        m.cpuPct += variant.farBeMode ? 13.0 : 4.0;
        result.players.push_back(m);
    }
    if (config.recordFrameLog)
        result.frameLogs = std::move(frameLogs);

    // Session-level QoE: per-player observations feed the mergeable
    // timer histograms (distributions with p50/p99 across runs), and
    // the last-run means stay exported as gauges for dashboards that
    // predate the histograms. Both are observe-only; exporting them
    // never alters the result computed above.
    if (!result.players.empty()) {
        double fps = 0.0, latency = 0.0, hit = 0.0;
        for (const PlayerMetrics &m : result.players) {
            fps += m.fps;
            latency += m.responsivenessMs;
            hit += m.cacheHitRatio;
            COTERIE_OBSERVE("qoe.fps", m.fps);
            COTERIE_OBSERVE("qoe.frame_latency_ms", m.responsivenessMs);
            COTERIE_OBSERVE("qoe.cache_hit_ratio", m.cacheHitRatio);
        }
        const double n = static_cast<double>(result.players.size());
        COTERIE_GAUGE_SET("qoe.fps", fps / n);
        COTERIE_GAUGE_SET("qoe.frame_latency_ms", latency / n);
        COTERIE_GAUGE_SET("qoe.frame_budget_ms", obs::kFrameBudgetMs);
        COTERIE_GAUGE_SET("qoe.cache_hit_ratio", hit / n);
    }
    return result;
}

SplitSystemRun::SplitSystemRun(sim::EventQueue &queue,
                               const SystemConfig &config,
                               const SplitVariant &variant,
                               const std::vector<double> &distThresholds,
                               const char *systemName, FleetHooks *hooks,
                               std::uint32_t fleetSession)
{
    COTERIE_ASSERT(config.world && config.grid && config.regions &&
                   config.frames && config.traces,
                   "incomplete system config");
    impl_ = std::make_unique<Impl>(queue, config, variant, distThresholds,
                                   systemName, hooks, fleetSession);
}

SplitSystemRun::~SplitSystemRun() = default;

void
SplitSystemRun::start()
{
    impl_->start();
}

double
SplitSystemRun::durationMs() const
{
    return impl_->duration;
}

SystemResult
SplitSystemRun::finish()
{
    return impl_->finish();
}

void
SplitSystemRun::throttlePrefetch(bool on)
{
    impl_->throttled = on;
}

void
SplitSystemRun::forceDegrade(bool on)
{
    impl_->forceDegrade = on;
}

void
SplitSystemRun::quarantine()
{
    impl_->quarantineAt(impl_->queue.now());
}

void
SplitSystemRun::shutdown()
{
    impl_->stopped = true;
}

bool
SplitSystemRun::quarantined() const
{
    return impl_->isQuarantined;
}

bool
SplitSystemRun::faulted() const
{
    return impl_->isFaulted;
}

const std::string &
SplitSystemRun::faultReason() const
{
    return impl_->faultReason;
}

LiveSlo
SplitSystemRun::sampleSlo()
{
    LiveSlo out = impl_->slo;
    impl_->slo.windowFrames = 0;
    impl_->slo.windowMisses = 0;
    return out;
}

std::uint64_t
SplitSystemRun::framesDisplayed() const
{
    return impl_->slo.frames;
}

int
SplitSystemRun::players() const
{
    return impl_->players;
}

const std::string &
SplitSystemRun::label() const
{
    return impl_->tracer.label();
}

SystemResult
runSplitSystem(const SystemConfig &config, const SplitVariant &variant,
               const std::vector<double> &distThresholds,
               const char *systemName)
{
    COTERIE_NAMED_SPAN(runSpan, "client.run_split_system", "core");
    sim::EventQueue queue;
    SplitSystemRun run(queue, config, variant, distThresholds, systemName);
    run.start();
    queue.runUntil(run.durationMs() + SplitSystemRun::settleMs());
    SystemResult result = run.finish();
    runSpan.simTimeMs(run.durationMs());
    return result;
}

} // namespace coterie::core
