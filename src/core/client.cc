#include "core/client.hh"

#include "sim/event_queue.hh"

#include <algorithm>
#include <cmath>
#include <deque>
#include <optional>
#include <unordered_map>
#include <unordered_set>

#include "net/endpoints.hh"
#include "net/resilience.hh"
#include "obs/frame_trace.hh"
#include "obs/metrics.hh"
#include "obs/trace.hh"
#include "render/cost_model.hh"
#include "support/logging.hh"

namespace coterie::core {

using geom::Vec2;
using sim::TimeMs;
using world::GridPoint;

namespace {

/** Causal identity of one outstanding fetch plus when it was queued
 *  on the client pipe (for the PipeWait hop). */
struct FetchTrace
{
    obs::FrameTraceContext ctx;
    TimeMs enqueuedAt = 0.0;
};

/** Runtime state of one split-rendering client. */
struct ClientState
{
    int playerId = 0;
    const trace::PlayerTrace *trace = nullptr;
    std::unique_ptr<FrameCache> cache;        // similar/exact match store
    /**
     * Per-client request pipe: one transfer on the wire at a time (a
     * single TCP stream to the server), later requests queue FIFO.
     * This is what bounds channel concurrency to the player count and
     * produces the paper's N-fold transfer-latency scaling.
     */
    std::deque<FrameCache::Key> pipe;
    std::unordered_set<std::uint64_t> requested; // queued or in flight
    bool wireBusy = false;
    std::unordered_map<std::uint64_t, TimeMs> arrived; // no-cache store
    GridPoint lastGrid{-1, -1};
    geom::Vec2 lastPos;
    bool hasLastPos = false;
    TimeMs lastDisplay = 0.0;
    bool stalled = false;
    TimeMs stallStart = 0.0;
    std::uint64_t deliveries = 0;      // total frames delivered
    std::uint64_t stallBaseline = 0;   // deliveries when stall began

    // Causal tracing: live fetch contexts by grid key, and the context
    // of the most recent completed delivery (what a stalled frame
    // links to when any fresh arrival unblocks it).
    std::unordered_map<std::uint64_t, FetchTrace> fetchTraces;
    obs::FrameTraceContext lastFetchDone;

    // Resilience / chaos state (inert on a clean run: fetcher null,
    // connected always true, every counter stays zero).
    std::unique_ptr<net::ResilientFetcher> fetcher;
    bool connected = true;
    std::uint64_t stallCount = 0;
    double stallMs = 0.0; // total frozen time across stalls
    std::uint64_t framesDegraded = 0;
    TimeMs lastDegradeAt = -1e18; // streak: consecutive degraded ticks
    std::uint64_t disconnects = 0;
    std::uint64_t rejoins = 0;
    TimeMs rejoinAt = -1.0;        // last rejoin instant (-1 = never)
    std::uint64_t probeFrames = 0; // displays inside the probe window
    std::uint64_t probeHits = 0;   // of those, clean (no stall/degrade)

    // Accumulators.
    RunningStats interFrame;
    RunningStats responsiveness;
    RunningStats transferLatency;
    RunningStats renderMs;
    RunningStats fetchedKb;
    std::uint64_t framesDisplayed = 0;
    std::uint64_t framesFetched = 0;
    std::uint64_t gridTransitions = 0;
    std::uint64_t bytesFetched = 0;
};

/** Trace pose at an absolute sim time. */
const trace::TracePoint &
poseAt(const trace::PlayerTrace &trace, TimeMs now, double tickMs)
{
    const auto idx = static_cast<std::size_t>(std::max(0.0, now / tickMs));
    return trace.points[std::min(idx, trace.points.size() - 1)];
}

} // namespace

SystemResult
runSplitSystem(const SystemConfig &config, const SplitVariant &variant,
               const std::vector<double> &distThresholds,
               const char *systemName)
{
    COTERIE_ASSERT(config.world && config.grid && config.regions &&
                   config.frames && config.traces,
                   "incomplete system config");
    COTERIE_NAMED_SPAN(runSpan, "client.run_split_system", "core");
    const auto &world = *config.world;
    const auto &grid = *config.grid;
    const auto &regions = *config.regions;
    const auto &frames = *config.frames;
    const auto &traces = *config.traces;
    const int players = traces.playerCount();
    const double duration = traces.durationMs();

    // A null or empty fault plan collapses every chaos hook to the
    // pre-chaos code path (the strict no-op contract).
    const sim::FaultPlan *faults =
        (config.faults != nullptr && !config.faults->empty())
            ? config.faults
            : nullptr;

    sim::EventQueue queue;
    net::SharedChannel channel(queue, config.channel, faults);
    net::FrameServer server(
        queue, channel,
        [&](std::uint64_t key) {
            const GridPoint g{
                static_cast<std::int64_t>(key %
                                          static_cast<std::uint64_t>(
                                              grid.cols())),
                static_cast<std::int64_t>(key /
                                          static_cast<std::uint64_t>(
                                              grid.cols()))};
            return variant.farBeMode ? frames.farBeBytes(g)
                                     : frames.wholeBeBytes(g);
        },
        config.serverNet, faults);
    std::optional<sim::FaultDriver> fault_driver;
    if (faults) {
        fault_driver.emplace(queue, *faults);
        fault_driver->arm();
    }
    net::FiSync fi_sync(config.fiSync, 11);
    Prefetcher prefetcher(world, grid, regions, variant.prefetch);

    // Causal frame tracer: one per run, always on (observe-only; every
    // exported value is sim-derived so determinism is unaffected). The
    // label keys the SLO summary published at finish().
    // Chaos runs get their own label so a clean run and a fault run of
    // the same session never merge their frame records (frame numbers
    // repeat across runs) in the SLO registry or trace_report.
    obs::FrameTracer tracer(
        (config.sessionTag.empty() ? std::string("session")
                                   : config.sessionTag) +
        "/" + std::to_string(players) + "p/" + systemName +
        (config.faults != nullptr ? "+chaos" : ""));
    using TraceKind = obs::FrameTracer::Kind;

    const double decode_ms =
        device::decodeMs(config.profile, frames.params().panoWidth,
                         frames.params().panoHeight);

    std::vector<ClientState> clients(players);
    for (int p = 0; p < players; ++p) {
        clients[p].playerId = p;
        clients[p].trace = &traces.players[p];
        if (variant.useCache) {
            FrameCacheParams cp;
            cp.capacityBytes = config.profile.cacheBudgetBytes;
            cp.policy = variant.policy;
            cp.mode = variant.matchMode;
            // Bucket edge ~ the largest reuse distance in force.
            double max_thresh = 0.5;
            for (double t : distThresholds)
                max_thresh = std::max(max_thresh, t);
            cp.bucketEdge = std::max(1.0, max_thresh);
            clients[p].cache = std::make_unique<FrameCache>(cp);
        }
        if (config.resilience.enabled) {
            net::ResilienceParams rp = config.resilience;
            // Independent jitter substream per client.
            rp.seed = hashCombine(config.resilience.seed,
                                  static_cast<std::uint64_t>(p) + 1);
            clients[p].fetcher = std::make_unique<net::ResilientFetcher>(
                queue, server, rp);
        }
    }

    auto thresh_for = [&](std::uint32_t leaf_id) {
        return leaf_id < distThresholds.size() ? distThresholds[leaf_id]
                                               : 0.0;
    };

    // Is the BE frame for grid point g usable right now?
    auto frame_available = [&](ClientState &c, const FrameCache::Key &key) {
        if (c.cache)
            return c.cache->lookup(key, thresh_for(key.leafRegionId))
                .has_value();
        return c.arrived.count(key.gridKey) > 0;
    };

    // Put the next queued request of client c on the wire.
    std::function<void(ClientState &)> pump = [&](ClientState &c) {
        if (c.wireBusy || c.pipe.empty() || !c.connected)
            return;
        const FrameCache::Key key = c.pipe.front();
        c.pipe.pop_front();
        c.wireBusy = true;
        const TimeMs issued = queue.now();
        // Time spent queued behind earlier requests on this client's
        // single TCP stream is a causal hop of its own.
        obs::FrameTraceContext fctx;
        if (auto ft = c.fetchTraces.find(key.gridKey);
            ft != c.fetchTraces.end()) {
            fctx = ft->second.ctx;
            if (issued > ft->second.enqueuedAt)
                fctx.hop(obs::Hop::PipeWait, ft->second.enqueuedAt,
                         issued);
        }
        auto on_delivered = [&c, key, issued, &frames, &grid, &variant,
                             &pump, &clients,
                             &tracer](std::uint64_t delivered_key,
                                      TimeMs at) {
            c.requested.erase(delivered_key);
            c.wireBusy = false;
            const GridPoint g{
                static_cast<std::int64_t>(
                    delivered_key %
                    static_cast<std::uint64_t>(grid.cols())),
                static_cast<std::int64_t>(
                    delivered_key /
                    static_cast<std::uint64_t>(grid.cols()))};
            const std::uint64_t bytes = variant.farBeMode
                                            ? frames.farBeBytes(g)
                                            : frames.wholeBeBytes(g);
            c.transferLatency.add(at - issued);
            c.fetchedKb.add(static_cast<double>(bytes) / 1024.0);
            c.bytesFetched += bytes;
            ++c.framesFetched;
            ++c.deliveries;
            if (auto ft = c.fetchTraces.find(delivered_key);
                ft != c.fetchTraces.end()) {
                tracer.complete(ft->second.ctx, at);
                c.lastFetchDone = ft->second.ctx;
                c.fetchTraces.erase(ft);
            }
            if (c.cache) {
                c.cache->insert(key, static_cast<std::uint32_t>(bytes));
            } else {
                c.arrived.emplace(delivered_key, at);
            }
            if (variant.overhear) {
                // Promiscuous mode: every station receives the frame.
                for (ClientState &other : clients) {
                    if (&other != &c && other.cache) {
                        other.cache->insert(
                            key, static_cast<std::uint32_t>(bytes));
                    }
                }
            }
            pump(c);
        };
        if (c.fetcher) {
            c.fetcher->fetch(
                key.gridKey, fctx, std::move(on_delivered),
                [&c, &pump, &tracer](std::uint64_t failed_key,
                                     TimeMs at) {
                    // Give-up after maxAttempts: free the request pipe
                    // and move on — the stall path degrades to the
                    // newest stale panorama and re-requests later.
                    c.requested.erase(failed_key);
                    c.wireBusy = false;
                    if (auto ft = c.fetchTraces.find(failed_key);
                        ft != c.fetchTraces.end()) {
                        tracer.abort(ft->second.ctx, at);
                        c.fetchTraces.erase(ft);
                    }
                    COTERIE_COUNT("client.fetch_giveups");
                    pump(c);
                });
        } else {
            net::RequestOptions ropts;
            ropts.trace = fctx;
            server.request(key.gridKey, std::move(on_delivered),
                           std::move(ropts));
        }
    };

    // Enqueue a frame request; @p urgent puts it at the head of the
    // pipe (a stalled display needs it before speculative prefetches).
    auto request_frame = [&](ClientState &c, const FrameCache::Key &key,
                             bool urgent = false) {
        if (c.requested.count(key.gridKey))
            return;
        c.requested.insert(key.gridKey);
        const TimeMs now = queue.now();
        // Mint the fetch's causal record at the moment of request; the
        // origin hop says why it exists (urgent on-demand request vs
        // speculative cover-set prefetch).
        obs::FrameTraceContext ctx = tracer.mint(
            TraceKind::Fetch, static_cast<std::uint16_t>(c.playerId),
            key.gridKey, now);
        ctx.hop(urgent ? obs::Hop::Request : obs::Hop::Prefetch, now,
                now);
        c.fetchTraces[key.gridKey] = FetchTrace{ctx, now};
        if (urgent)
            c.pipe.push_front(key);
        else
            c.pipe.push_back(key);
        // Bound speculative backlog: drop the most speculative tail.
        while (c.pipe.size() > 6) {
            const std::uint64_t dropped = c.pipe.back().gridKey;
            c.requested.erase(dropped);
            if (auto ft = c.fetchTraces.find(dropped);
                ft != c.fetchTraces.end()) {
                tracer.abort(ft->second.ctx, now);
                c.fetchTraces.erase(ft);
            }
            c.pipe.pop_back();
        }
        pump(c);
    };

    // Per-client frame loop; defined recursively through the queue.
    std::function<void(int)> schedule_frame;

    // Shared display epilogue: commit a frame after @p frame_time,
    // record its latency, fold rejoin-probe accounting (@p hit = the
    // frame was served without stall or degradation), then loop.
    std::uint64_t degraded_total = 0;
    auto display = [&](int pid, double frame_time, double latency,
                       double render, bool hit,
                       obs::FrameTraceContext fctx, double readyAt) {
        queue.scheduleIn(frame_time, [&, pid, latency, render, hit,
                                      fctx, readyAt]() mutable {
            ClientState &cc = clients[pid];
            const TimeMs done = queue.now();
            // Stamp any vsync padding as the Display hop, then
            // complete the causal record at content-ready time (the
            // Equation-2 latency point) so the deadline scoreboard
            // judges the same latency the QoE model reports below.
            if (done > readyAt)
                tracer.hop(fctx, obs::Hop::Display, readyAt, done);
            tracer.complete(fctx, readyAt);
            cc.interFrame.add(done - cc.lastDisplay);
            cc.responsiveness.add(config.sensorMs + latency);
            cc.renderMs.add(render);
            cc.lastDisplay = done;
            ++cc.framesDisplayed;
            COTERIE_COUNT("client.frames_displayed");
            // Simulated per-frame latency, comparable against the
            // 16.7 ms QoE budget (Equation 2 / Table 6).
            COTERIE_OBSERVE("client.frame_latency_sim_ms", latency);
            if (cc.rejoinAt >= 0.0) {
                const double lo =
                    cc.rejoinAt + config.resilience.rejoinSettleMs;
                if (done >= lo &&
                    done < lo + config.resilience.rejoinProbeMs) {
                    ++cc.probeFrames;
                    if (hit)
                        ++cc.probeHits;
                }
            }
            schedule_frame(pid);
        });
    };

    schedule_frame = [&](int pid) {
        ClientState &c = clients[pid];
        const TimeMs now = queue.now();
        if (now >= duration)
            return;

        if (faults != nullptr && faults->disconnected(pid, now)) {
            if (c.connected) {
                // Scripted WLAN drop: the association resets — every
                // in-flight fetch aborts, the request pipe clears, a
                // stall in progress is abandoned.
                c.connected = false;
                ++c.disconnects;
                COTERIE_COUNT("client.disconnects");
                if (c.fetcher)
                    c.fetcher->cancelAll();
                // Cancelled fetches never call back: close out their
                // causal records as aborted at the drop instant.
                for (auto &[fk, ft] : c.fetchTraces)
                    tracer.abort(ft.ctx, now);
                c.fetchTraces.clear();
                c.pipe.clear();
                c.requested.clear();
                c.wireBusy = false;
                if (c.stalled) {
                    // The abandoned stall's frozen time still counts.
                    c.stallMs += now - c.stallStart;
                    c.stalled = false;
                }
            }
            const TimeMs rejoin = faults->reconnectsAt(pid, now);
            if (rejoin < duration)
                queue.scheduleAt(rejoin,
                                 [&, pid] { schedule_frame(pid); });
            return;
        }

        const trace::TracePoint &pose =
            poseAt(*c.trace, now, traces.tickMs);
        const GridPoint g = grid.snap(pose.position);
        const FrameCache::Key key = prefetcher.keyFor(g);
        if (c.cache)
            c.cache->setPlayerPosition(pose.position);

        if (!c.connected) {
            // Back on the WLAN: before resuming the frame loop,
            // re-sync the cover set through the prefetcher (the
            // movement heading went stale while offline, so cover all
            // directions in one burst).
            c.connected = true;
            ++c.rejoins;
            c.rejoinAt = now;
            COTERIE_COUNT("client.rejoins");
            obs::TraceRecorder::global().instant("client.rejoin",
                                                 "fault", now);
            c.lastGrid = GridPoint{-1, -1};
            for (const PrefetchTarget &t : prefetcher.resyncTargets(
                     g, pose.position, c.cache.get(), distThresholds)) {
                request_frame(c, prefetcher.keyFor(t.point));
            }
        }

        // New grid point: issue prefetches for the upcoming cover set.
        // The prefetch direction follows the player's *movement* (which
        // Furion observes to be predictable), not the noisy gaze yaw.
        double heading = pose.yaw;
        if (c.hasLastPos) {
            const geom::Vec2 delta = pose.position - c.lastPos;
            if (delta.lengthSq() > 1e-12)
                heading = delta.angle();
        }
        c.lastPos = pose.position;
        c.hasLastPos = true;
        if (!(g == c.lastGrid)) {
            ++c.gridTransitions;
            c.lastGrid = g;
            const auto targets = prefetcher.misses(
                g, pose.position, heading, c.cache.get(), distThresholds);
            for (const PrefetchTarget &t : targets) {
                if (!c.cache && c.arrived.count(t.gridKey))
                    continue; // already fetched earlier
                request_frame(c, prefetcher.keyFor(t.point));
            }
        }

        // Compute this frame's latency (Equation 2).
        const double cutoff = regions.cutoffAt(pose.position);
        const double render =
            variant.farBeMode
                ? config.rtFiMs + render::renderTimeMs(
                                      world, pose.position, 0.0, cutoff,
                                      config.profile.cost)
                : config.rtFiMs;
        // FI sync rides the same WLAN: scripted loss bursts hit it too,
        // and an outage (bandwidth factor 0) loses every tick. With no
        // faults the 0-loss overload draws the identical rng stream.
        const double fi_loss =
            faults != nullptr
                ? (faults->bandwidthFactor(now) <= 0.0
                       ? 1.0
                       : std::min(1.0,
                                  faults->extraLossProbability(now)))
                : 0.0;
        const double sync =
            players > 1 ? fi_sync.syncLatencyMs(players, fi_loss) : 0.0;
        const double core = std::max({render, decode_ms, sync});

        // A stalled frame unblocks either when the exact BE arrives or
        // when any fresh delivery lands: the client then displays with
        // the newest (possibly one-grid-point stale) panorama, exactly
        // what lets the real Multi-Furion degrade to ~45 FPS instead of
        // freezing. The slight BE staleness is why its measured SSIM
        // trails Coterie's (Table 7).
        const bool was_stalled = c.stalled;
        const bool unblocked =
            c.stalled && c.deliveries > c.stallBaseline;
        if (unblocked || frame_available(c, key)) {
            // A frame that stalled waiting for the network already ran
            // its parallel tasks during the wait; only the merge
            // remains (decode streams during the transfer). Fresh
            // frames pay the full Equation-2 pipeline, padded to the
            // display refresh interval.
            double frame_time, latency, ready_at;
            obs::FrameTraceContext fctx;
            if (c.stalled) {
                // Pad to the display refresh: a short stall still
                // cannot beat vsync.
                const double waited = now - c.stallStart;
                c.stallMs += waited;
                frame_time =
                    std::max(config.mergeMs, config.tickMs - waited);
                latency = waited + config.mergeMs;
                c.stalled = false;
                // The frame's causal story began when the stall did;
                // link it to the delivery that unblocked it so the
                // critical path can descend into the fetch.
                fctx = tracer.mint(TraceKind::Frame,
                                   static_cast<std::uint16_t>(pid),
                                   c.framesDisplayed, c.stallStart);
                fctx.hop(obs::Hop::StallWait, c.stallStart, now);
                if (c.lastFetchDone.active())
                    tracer.link(fctx, c.lastFetchDone);
                fctx.hop(obs::Hop::Merge, now, now + config.mergeMs);
                ready_at = now + config.mergeMs;
            } else {
                const double pipeline = core + config.mergeMs;
                frame_time = std::max(config.tickMs, pipeline);
                latency = pipeline;
                // Fresh frame: the Equation-2 parallel tasks (FI/far
                // render, BE decode, FI sync) then the serial merge.
                fctx = tracer.mint(TraceKind::Frame,
                                   static_cast<std::uint16_t>(pid),
                                   c.framesDisplayed, now);
                fctx.hop(obs::Hop::Render, now, now + render);
                fctx.hop(obs::Hop::Decode, now, now + decode_ms);
                if (sync > 0.0)
                    fctx.hop(obs::Hop::Sync, now, now + sync);
                fctx.hop(obs::Hop::Merge, now + core, now + pipeline);
                ready_at = now + pipeline;
            }
            display(pid, frame_time, latency, render, !was_stalled,
                    fctx, ready_at);
        } else {
            // Stall: the needed frame is missing. Ensure it is on the
            // wire, then poll for its arrival (cheap 1 ms poll).
            if (!c.stalled) {
                c.stalled = true;
                c.stallStart = now;
                c.stallBaseline = c.deliveries;
                ++c.stallCount;
                COTERIE_COUNT("client.stalls");
            }
            const double waited = now - c.stallStart;
            // Reprojection-style streak: the degradeAfterMs threshold
            // is paid once per miss, not per frame — while the urgent
            // fetch stays outstanding, subsequent ticks keep re-showing
            // the stale panorama at display cadence instead of
            // re-freezing for another threshold.
            const bool degrade_streak =
                now - c.lastDegradeAt <= config.tickMs * 1.5;
            if (c.fetcher != nullptr && c.cache != nullptr &&
                (waited >= config.resilience.degradeAfterMs ||
                 degrade_streak) &&
                c.cache->entryCount() > 0) {
                // Graceful degradation: rather than freezing on the
                // missing megaframe, re-display the newest cached
                // panorama (frame similarity makes the stale far BE
                // perceptually close) and account a *degraded* frame.
                // The urgent fetch stays in flight and repairs the
                // cache when it lands.
                ++c.framesDegraded;
                ++degraded_total;
                c.stallMs += waited;
                c.lastDegradeAt = now;
                COTERIE_COUNT("qoe.degraded_frames");
                obs::TraceRecorder::global().counter(
                    "qoe.degraded_frames",
                    static_cast<double>(degraded_total));
                c.stalled = false;
                const double frame_time =
                    std::max(config.mergeMs, config.tickMs - waited);
                const double latency = waited + config.mergeMs;
                // Degraded frame: waited, then merged a stale panorama
                // (no unblocking delivery to link — the urgent repair
                // fetch is still in flight).
                obs::FrameTraceContext fctx = tracer.mint(
                    TraceKind::Frame, static_cast<std::uint16_t>(pid),
                    c.framesDisplayed, c.stallStart);
                fctx.hop(obs::Hop::StallWait, c.stallStart, now);
                fctx.hop(obs::Hop::Merge, now, now + config.mergeMs);
                request_frame(c, key, /*urgent=*/true);
                display(pid, frame_time, latency, render,
                        /*hit=*/false, fctx, now + config.mergeMs);
                return;
            }
            request_frame(c, key, /*urgent=*/true);
            queue.scheduleIn(1.0, [&, pid] { schedule_frame(pid); });
        }
    };

    for (int p = 0; p < players; ++p) {
        // Stagger starts by a fraction of a tick like real headsets.
        queue.scheduleIn(p * 2.1, [&, p] { schedule_frame(p); });
    }
    queue.runUntil(duration + 1000.0);

    // Export the causal frame records (sim-timeline trace events when
    // recording) and publish the per-session SLO summary.
    tracer.finish();

    SystemResult result;
    result.systemName = systemName;
    result.durationMs = duration;
    result.channelUtilMbps = channel.meanThroughputMbps();
    for (ClientState &c : clients) {
        PlayerMetrics m;
        m.playerId = c.playerId;
        m.framesDisplayed = c.framesDisplayed;
        m.framesFetched = c.framesFetched;
        m.gridTransitions = c.gridTransitions;
        m.fps = duration > 0.0
                    ? static_cast<double>(c.framesDisplayed) /
                          (duration / 1000.0)
                    : 0.0;
        m.interFrameMs = c.interFrame.mean();
        m.responsivenessMs = c.responsiveness.mean();
        m.netDelayMs = c.transferLatency.mean();
        m.frameKb = c.fetchedKb.mean();
        m.renderMsPerFrame = c.renderMs.mean();
        m.beMbps = duration > 0.0
                       ? static_cast<double>(c.bytesFetched) * 8.0 /
                             (duration / 1000.0) / 1e6
                       : 0.0;
        m.fiKbps = fi_sync.bandwidthKbps(players) /
                   std::max(1, players);
        m.cacheHitRatio =
            c.gridTransitions
                ? std::max(0.0, 1.0 - static_cast<double>(c.framesFetched) /
                                          static_cast<double>(
                                              c.gridTransitions))
                : 0.0;
        if (c.cache)
            m.cacheStats = c.cache->stats();
        m.stalls = c.stallCount;
        m.stallMs = c.stallMs;
        m.framesDegraded = c.framesDegraded;
        m.disconnects = c.disconnects;
        m.rejoins = c.rejoins;
        if (c.fetcher) {
            m.netRetries = c.fetcher->stats().retries;
            m.netTimeouts = c.fetcher->stats().timeouts;
            m.fetchGiveups = c.fetcher->stats().failures;
        }
        m.rejoinHitRatio =
            c.probeFrames > 0
                ? static_cast<double>(c.probeHits) /
                      static_cast<double>(c.probeFrames)
                : -1.0;
        m.gpuPct = device::gpuLoadPct(config.profile, m.renderMsPerFrame,
                                      std::min(m.fps, 60.0));
        device::CpuLoadInputs cpu_in;
        cpu_in.networkMbps = m.beMbps;
        cpu_in.decodeFps = std::min(m.fps, 60.0);
        cpu_in.syncHz = players > 1 ? 60.0 : 0.0;
        cpu_in.rendering = true;
        m.cpuPct = device::cpuLoadPct(config.profile, cpu_in);
        // Split-rendering pipeline CPU work the generic model does not
        // carry: texture upload + merge (both modes), plus cache and
        // near-BE draw submission for Coterie (calibrated to Table 8).
        m.cpuPct += variant.farBeMode ? 13.0 : 4.0;
        result.players.push_back(m);
    }
    runSpan.simTimeMs(duration);

    // Session-level QoE: per-player observations feed the mergeable
    // timer histograms (distributions with p50/p99 across runs), and
    // the last-run means stay exported as gauges for dashboards that
    // predate the histograms. Both are observe-only; exporting them
    // never alters the result computed above.
    if (!result.players.empty()) {
        double fps = 0.0, latency = 0.0, hit = 0.0;
        for (const PlayerMetrics &m : result.players) {
            fps += m.fps;
            latency += m.responsivenessMs;
            hit += m.cacheHitRatio;
            COTERIE_OBSERVE("qoe.fps", m.fps);
            COTERIE_OBSERVE("qoe.frame_latency_ms", m.responsivenessMs);
            COTERIE_OBSERVE("qoe.cache_hit_ratio", m.cacheHitRatio);
        }
        const double n = static_cast<double>(result.players.size());
        COTERIE_GAUGE_SET("qoe.fps", fps / n);
        COTERIE_GAUGE_SET("qoe.frame_latency_ms", latency / n);
        COTERIE_GAUGE_SET("qoe.frame_budget_ms", obs::kFrameBudgetMs);
        COTERIE_GAUGE_SET("qoe.cache_hit_ratio", hit / n);
    }
    return result;
}

} // namespace coterie::core
