/**
 * @file
 * Persistence for the offline preprocessing artifacts.
 *
 * The paper's workflow runs the adaptive cutoff scheme and the reuse-
 * distance derivation once per (game, device) at install time; clients
 * then load the results. This module serialises a PartitionResult plus
 * its distance thresholds to a versioned text file and loads them back.
 */

#pragma once

#include <optional>
#include <string>
#include <vector>

#include "core/partitioner.hh"

namespace coterie::core {

/** The on-disk bundle: everything an online client needs. */
struct OfflineArtifacts
{
    std::string game;
    std::string device;
    geom::Rect worldBounds;
    std::vector<LeafRegion> leaves;
    std::vector<double> distThresholds; ///< indexed by leaf id
};

/** Serialise to @p path; returns false on IO failure. */
bool saveArtifacts(const OfflineArtifacts &artifacts,
                   const std::string &path);

/**
 * Load from @p path. Returns nullopt on IO failure or a malformed /
 * version-mismatched file (never panics on bad input: installation
 * data may be stale or truncated).
 */
std::optional<OfflineArtifacts> loadArtifacts(const std::string &path);

} // namespace coterie::core

