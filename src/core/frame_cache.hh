/**
 * @file
 * Client-side far-BE frame cache (paper §5.3).
 *
 * Lookup returns a cached frame for grid point k when (1) its grid
 * point lies within the leaf region's distance threshold of k, (2) it
 * belongs to the same leaf region (regions have different cutoffs, so
 * crossing regions would open a near/far gap), and (3) its near-BE
 * object set equals k's (no missing geometry after the merge). Among
 * all qualifying frames the closest wins.
 *
 * Replacement: LRU (temporal locality) or FLF — furthest location
 * first — (spatial locality), plus Random as an ablation baseline.
 * An ExactOnly mode reproduces "Multi-Furion with frame cache"
 * (Figure 11) and cache Versions 1/2 (Table 4).
 */

#pragma once

#include <cstdint>
#include <optional>
#include <unordered_map>
#include <vector>

#include "geom/vec.hh"
#include "support/thread_annotations.hh"

namespace coterie::core {

/** Cache replacement policy. */
enum class ReplacementPolicy { Lru, Flf, Random };

/** Match mode for lookups. */
enum class MatchMode
{
    ExactOnly, ///< only the identical grid point hits (Versions 1/2)
    Similar,   ///< paper's three-criteria similar-frame match
};

/** Metadata of one cached far-BE frame. */
struct CachedFrame
{
    std::uint64_t gridKey = 0;      ///< dense grid index (identity)
    geom::Vec2 position;            ///< world position of the grid point
    std::uint32_t leafRegionId = 0;
    std::uint64_t nearSetSignature = 0;
    std::uint32_t sizeBytes = 0;
    std::uint64_t lastUseTick = 0;
    std::uint64_t insertTick = 0;
};

/** Cache configuration. */
struct FrameCacheParams
{
    std::size_t capacityBytes = 1200ull * 1024 * 1024;
    ReplacementPolicy policy = ReplacementPolicy::Lru;
    MatchMode mode = MatchMode::Similar;
    /** Spatial-hash bucket edge (m); ~ the largest dist threshold. */
    double bucketEdge = 4.0;
    std::uint64_t seed = 23; ///< for Random replacement
};

/** Hit/miss counters. */
struct CacheStats
{
    std::uint64_t lookups = 0;
    std::uint64_t hits = 0;
    std::uint64_t exactHits = 0;
    std::uint64_t insertions = 0;
    std::uint64_t evictions = 0;
    /** Diagnostic: candidate rejections by lookup criterion. */
    std::uint64_t rejectedRegion = 0;
    std::uint64_t rejectedSignature = 0;
    std::uint64_t rejectedDistance = 0;

    double hitRatio() const
    {
        return lookups ? static_cast<double>(hits) /
                             static_cast<double>(lookups)
                       : 0.0;
    }
};

/**
 * The frame cache. Stores metadata only — actual frame bytes live in
 * the decoder path; all cache decisions depend on metadata alone (the
 * paper makes the same observation for its caching study, §4.6).
 *
 * Thread-safe: every public method locks the internal mutex, so a
 * shared cache (the Table 5 overheard-frame versions run one cache per
 * coterie) can be queried from pool tasks. Determinism is preserved
 * because callers in `src/` only drive it from the single simulation
 * thread or behind an ordered reduction.
 */
class FrameCache
{
  public:
    explicit FrameCache(FrameCacheParams params = {});

    /** Query descriptor for a lookup or insertion. */
    struct Key
    {
        std::uint64_t gridKey = 0;
        geom::Vec2 position;
        std::uint32_t leafRegionId = 0;
        std::uint64_t nearSetSignature = 0;
    };

    /**
     * Look up a frame usable at @p key given the region's
     * @p distThresh; advances the clock and updates stats/LRU.
     * Returns the matched frame's grid key.
     */
    std::optional<std::uint64_t> lookup(const Key &key, double distThresh);

    /** Lookup without stats/LRU side effects. */
    std::optional<std::uint64_t> peek(const Key &key,
                                      double distThresh) const;

    /** Insert a fetched frame; evicts per policy when over capacity. */
    void insert(const Key &key, std::uint32_t sizeBytes);

    /** Whether the exact grid point is resident. */
    bool containsExact(std::uint64_t gridKey) const;

    /** Player position feed (FLF evicts furthest from here). */
    void setPlayerPosition(geom::Vec2 p)
    {
        support::MutexLock lock(mutex_);
        playerPos_ = p;
    }

    /** Snapshot of the counters (by value: stats_ is lock-guarded). */
    CacheStats stats() const
    {
        support::MutexLock lock(mutex_);
        return stats_;
    }

    void resetStats()
    {
        support::MutexLock lock(mutex_);
        stats_ = {};
    }

    std::size_t entryCount() const
    {
        support::MutexLock lock(mutex_);
        return entries_.size();
    }

    std::size_t bytesUsed() const
    {
        support::MutexLock lock(mutex_);
        return bytesUsed_;
    }

    const FrameCacheParams &params() const { return params_; }

  private:
    std::int64_t bucketOf(geom::Vec2 p) const;
    const CachedFrame *findBest(const Key &key, double distThresh,
                                CacheStats *stats) const
        COTERIE_REQUIRES(mutex_);
    void evictOne() COTERIE_REQUIRES(mutex_);

    FrameCacheParams params_; ///< immutable after the constructor
    mutable support::Mutex mutex_{"FrameCache::mutex_"};
    /** Entries by gridKey. */
    std::unordered_map<std::uint64_t, CachedFrame>
        entries_ COTERIE_GUARDED_BY(mutex_);
    /** Spatial hash: bucket id -> grid keys in bucket. */
    std::unordered_map<std::int64_t, std::vector<std::uint64_t>>
        buckets_ COTERIE_GUARDED_BY(mutex_);
    std::size_t bytesUsed_ COTERIE_GUARDED_BY(mutex_) = 0;
    std::uint64_t clock_ COTERIE_GUARDED_BY(mutex_) = 0;
    geom::Vec2 playerPos_ COTERIE_GUARDED_BY(mutex_);
    CacheStats stats_ COTERIE_GUARDED_BY(mutex_);
    std::uint64_t rngState_ COTERIE_GUARDED_BY(mutex_);
};

} // namespace coterie::core

