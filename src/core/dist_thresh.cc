#include "core/dist_thresh.hh"

#include <algorithm>
#include <cmath>


namespace coterie::core {

using geom::Vec2;

double
distThreshAt(const SimilarityModel &model, Vec2 location, double cutoff,
             const DistThreshParams &params, Rng &rng)
{
    const double theta = rng.uniform(0.0, 2.0 * M_PI);
    const Vec2 dir = Vec2::fromAngle(theta);
    auto similar_at = [&](double d) {
        return model.farBeSsim(location, location + dir * d, cutoff) >=
               params.ssimThreshold;
    };

    double hi = params.startDistance;
    if (similar_at(hi))
        return hi;
    double lo = 0.0;
    while (hi - lo > params.tolerance) {
        const double mid = 0.5 * (lo + hi);
        if (similar_at(mid))
            lo = mid;
        else
            hi = mid;
    }
    return lo;
}

std::vector<double>
deriveDistThresholds(const RegionIndex &index, const SimilarityModel &model,
                     const DistThreshParams &params)
{
    Rng rng(params.seed);
    std::vector<double> thresholds;
    thresholds.reserve(index.leaves().size());
    for (const LeafRegion &leaf : index.leaves()) {
        double region_min = params.startDistance;
        for (int i = 0; i < params.samplesPerRegion; ++i) {
            const Vec2 p{rng.uniform(leaf.rect.lo.x, leaf.rect.hi.x),
                         rng.uniform(leaf.rect.lo.y, leaf.rect.hi.y)};
            region_min =
                std::min(region_min,
                         distThreshAt(model, p, leaf.cutoffRadius, params,
                                      rng));
        }
        thresholds.push_back(region_min);
    }
    return thresholds;
}

} // namespace coterie::core
