#!/usr/bin/env bash
#
# Back-compat shim: the TSan check now lives in the full sanitizer
# matrix. Equivalent to tools/check_sanitizers.sh --only thread. The
# optional positional argument is the build-dir *prefix* (the tree is
# created at <prefix>-thread; default build-thread).
set -euo pipefail
exec "$(dirname "$0")/check_sanitizers.sh" --only thread "${1:-}"
