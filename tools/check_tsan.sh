#!/usr/bin/env bash
#
# Build the parallel-pipeline tests under ThreadSanitizer and run them
# with a multi-worker pool. Usage: tools/check_tsan.sh [build-dir]
#
# COTERIE_SANITIZE=address works the same way via:
#   cmake -B build-asan -DCOTERIE_SANITIZE=address ...
set -euo pipefail

REPO_ROOT="$(cd "$(dirname "$0")/.." && pwd)"
BUILD_DIR="${1:-$REPO_ROOT/build-tsan}"
JOBS="$(nproc 2>/dev/null || echo 2)"

cmake -B "$BUILD_DIR" -S "$REPO_ROOT" \
    -DCOTERIE_SANITIZE=thread \
    -DCMAKE_BUILD_TYPE=RelWithDebInfo >/dev/null

cmake --build "$BUILD_DIR" -j"$JOBS" \
    --target parallel_test renderer_test ssim_test

# Force worker threads even on small hosts so TSan actually sees the
# pool's cross-thread traffic.
export COTERIE_THREADS="${COTERIE_THREADS:-4}"
export TSAN_OPTIONS="${TSAN_OPTIONS:-halt_on_error=1 second_deadlock_stack=1}"

status=0
for test_bin in parallel_test renderer_test ssim_test; do
    echo "== TSan: $test_bin (COTERIE_THREADS=$COTERIE_THREADS) =="
    if ! "$BUILD_DIR/tests/$test_bin"; then
        status=1
    fi
done

if [ "$status" -eq 0 ]; then
    echo "TSan check passed."
else
    echo "TSan check FAILED." >&2
fi
exit "$status"
