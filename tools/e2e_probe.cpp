#include <cstdio>
#include <chrono>
#include "core/session.hh"
using namespace coterie;
using namespace coterie::core;
using namespace coterie::world::gen;
static double tick() {
    static auto t0 = std::chrono::steady_clock::now();
    auto t1 = std::chrono::steady_clock::now();
    double d = std::chrono::duration<double>(t1-t0).count();
    t0 = t1; return d;
}
static void show(const SystemResult &r) {
    std::printf("[%6.1fs] %-18s", tick(), r.systemName.c_str());
    for (const auto &m : r.players)
        std::printf(" | fps=%.0f if=%.1f resp=%.1f cpu=%.0f gpu=%.0f fr=%.0fKB nd=%.1f be=%.1fMb hit=%.2f",
            m.fps, m.interFrameMs, m.responsivenessMs, m.cpuPct, m.gpuPct,
            m.frameKb, m.netDelayMs, m.beMbps, m.cacheHitRatio);
    for (const auto &m : r.players)
        std::printf("  [cache lk=%llu hit=%llu exact=%llu ins=%llu evict=%llu rejR=%llu rejS=%llu rejD=%llu | fetched=%llu trans=%llu]",
            (unsigned long long)m.cacheStats.lookups,(unsigned long long)m.cacheStats.hits,
            (unsigned long long)m.cacheStats.exactHits,(unsigned long long)m.cacheStats.insertions,
            (unsigned long long)m.cacheStats.evictions,
            (unsigned long long)m.cacheStats.rejectedRegion,
            (unsigned long long)m.cacheStats.rejectedSignature,
            (unsigned long long)m.cacheStats.rejectedDistance,
            (unsigned long long)m.framesFetched,
            (unsigned long long)m.gridTransitions);
    std::printf("\n"); std::fflush(stdout);
}
int main() {
  for (GameId game : {GameId::Viking, GameId::CTS, GameId::Racing}) {
   for (int np : {1, 2}) {
    SessionParams sp; sp.players = np; sp.durationS = 60.0;
    tick();
    auto s = Session::create(game, sp);
    std::printf("===== %s %dP =====\n", s->info().name.c_str(), np);
    {
        const auto &th = s->distThresholds();
        double mn=1e9, mx=0, sum=0; int nr=0;
        for (size_t i=0;i<th.size();++i){ if(!s->partition().leaves[i].reachable) continue; mn=std::min(mn,th[i]); mx=std::max(mx,th[i]); sum+=th[i]; nr++; }
        std::printf("[%6.1fs] session created; decay=%.2f thresh min/mean/max = %.3f/%.3f/%.3f (%d leaves)\n",
               tick(), s->similarityParams().decay, mn, sum/nr, mx, nr);
        std::fflush(stdout);
    }
    show(s->runMobileSystem());
    show(s->runThinClientSystem());
    show(s->runMultiFurionSystem());
    show(s->runCoterieSystem());
   }
  }
  return 0;
}
