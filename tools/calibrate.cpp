// Calibration probe: prints the key model quantities per game for tuning.
#include <cstdio>
#include "core/session.hh"
#include "core/cutoff.hh"
#include "render/cost_model.hh"
#include "support/rng.hh"

using namespace coterie;
using namespace coterie::core;
using namespace coterie::world::gen;

int main() {
    for (GameId id : {GameId::Viking, GameId::CTS, GameId::Racing,
                      GameId::DS, GameId::FPS, GameId::Soccer,
                      GameId::Pool, GameId::Bowling, GameId::Corridor}) {
        const GameInfo &info = gameInfo(id);
        auto world = makeWorld(id, 42);
        auto grid = makeGrid(info);
        auto profile = device::pixel2();
        Rng rng(7);
        // whole-scene render time at 12 random points
        RunningStats whole, cut;
        for (int i=0;i<12;i++) {
            geom::Vec2 p{rng.uniform(world.bounds().lo.x, world.bounds().hi.x),
                         rng.uniform(world.bounds().lo.y, world.bounds().hi.y)};
            whole.add(render::renderTimeMs(world, p, 0, profile.cost.cullDistance, profile.cost));
            cut.add(maxCutoffRadius(world, p, profile));
        }
        // also near activity center
        geom::Vec2 c = world.bounds().center();
        double whole_c = render::renderTimeMs(world, c, 0, profile.cost.cullDistance, profile.cost);
        double cut_c = maxCutoffRadius(world, c, profile);
        std::printf("%-9s objs=%5zu grid=%.1fM  RTwhole mean=%.1f ctr=%.1f ms  cutoff mean=%.1f [%.1f..%.1f] ctr=%.1f m\n",
            info.name.c_str(), world.objects().size(), grid.pointCount()/1e6,
            whole.mean(), whole_c, cut.mean(), cut.min(), cut.max(), cut_c);
    }
    // partition stats for 3 eval games
    for (GameId id : {GameId::Viking, GameId::CTS, GameId::Racing}) {
        auto world = makeWorld(id, 42);
        PartitionParams pp;
        pp.reachable = makeReachability(gameInfo(id), world);
        auto res = partitionWorld(world, device::pixel2(), pp);
        std::printf("%-9s leaves=%zu depth=%.2f/%d calcs=%llu wall=%.1fs modeled=%.2fh\n",
            world.name().c_str(), res.leaves.size(), res.avgLeafDepth, res.maxLeafDepth,
            (unsigned long long)res.cutoffCalculations, res.wallClockSeconds, res.modeledHours);
    }
    return 0;
}
