#!/usr/bin/env bash
#
# Sanitizer matrix for the parallel frame pipeline: build and run the
# pool/codec/SSIM tests under ThreadSanitizer, AddressSanitizer, and
# UndefinedBehaviorSanitizer from one entry point.
#
# Usage: tools/check_sanitizers.sh [--only thread,address,undefined]
#                                  [--tests "bin1 bin2 ..."] [build-dir-prefix]
#
# --only takes one sanitizer or a comma-separated subset, e.g.
# `--only thread,undefined`.
#
# Each sanitizer gets its own build tree (<prefix>-<sanitizer>, default
# build-<sanitizer>). COTERIE_THREADS is forced >= 4 so the pool's
# cross-thread traffic is actually exercised on small hosts.
set -euo pipefail

REPO_ROOT="$(cd "$(dirname "$0")/.." && pwd)"
JOBS="$(nproc 2>/dev/null || echo 2)"

SANITIZERS=(thread address undefined)
# lock_order_test rides every sanitizer leg: COTERIE_LOCK_ORDER=AUTO
# resolves ON whenever COTERIE_SANITIZE is set, so the runtime
# lock-order validator's death tests actually fire here.
TEST_BINS=(parallel_test renderer_test ssim_test codec_test obs_test
           frame_trace_test bvh_test terrain_test pano_cache_test
           lock_order_test fleet_test)
PREFIX=""

while [ $# -gt 0 ]; do
    case "$1" in
      --only)
        IFS=',' read -r -a SANITIZERS <<<"$2"
        shift 2
        ;;
      --tests)
        read -r -a TEST_BINS <<<"$2"
        shift 2
        ;;
      -h|--help)
        grep '^#' "$0" | sed 's/^# \{0,1\}//' | head -12
        exit 0
        ;;
      *)
        PREFIX="$1"
        shift
        ;;
    esac
done

status=0
for sanitizer in "${SANITIZERS[@]}"; do
    case "$sanitizer" in
      thread|address|undefined) ;;
      *)
        echo "unknown sanitizer '$sanitizer'" >&2
        exit 2
        ;;
    esac

    BUILD_DIR="${PREFIX:-$REPO_ROOT/build}-$sanitizer"
    echo "=== [$sanitizer] configure + build -> $BUILD_DIR ==="
    cmake -B "$BUILD_DIR" -S "$REPO_ROOT" \
        -DCOTERIE_SANITIZE="$sanitizer" \
        -DCMAKE_BUILD_TYPE=RelWithDebInfo >/dev/null
    cmake --build "$BUILD_DIR" -j"$JOBS" --target "${TEST_BINS[@]}"

    export COTERIE_THREADS="${COTERIE_THREADS:-4}"
    export TSAN_OPTIONS="${TSAN_OPTIONS:-halt_on_error=1 second_deadlock_stack=1}"
    export ASAN_OPTIONS="${ASAN_OPTIONS:-detect_leaks=1}"
    export UBSAN_OPTIONS="${UBSAN_OPTIONS:-halt_on_error=1 print_stacktrace=1}"

    for test_bin in "${TEST_BINS[@]}"; do
        echo "== [$sanitizer] $test_bin (COTERIE_THREADS=$COTERIE_THREADS) =="
        if ! "$BUILD_DIR/tests/$test_bin"; then
            status=1
        fi
    done
done

if [ "$status" -eq 0 ]; then
    echo "Sanitizer matrix passed (${SANITIZERS[*]})."
else
    echo "Sanitizer matrix FAILED." >&2
fi
exit "$status"
