#!/usr/bin/env bash
#
# Run clang-tidy (config: .clang-tidy at the repo root) over the
# directories the project keeps warning-clean: src/support/ and
# src/image/ by default.
#
# Usage: tools/run_tidy.sh [build-dir] [dir ...]
#
# Every configured build dir has a compile_commands.json (the top
# CMakeLists sets CMAKE_EXPORT_COMPILE_COMMANDS unconditionally); one
# is configured here only if the dir has never been configured. Extra
# dirs widen the sweep (expect noise outside the clean set).
set -euo pipefail

REPO_ROOT="$(cd "$(dirname "$0")/.." && pwd)"
BUILD_DIR="${1:-$REPO_ROOT/build}"
shift || true
DIRS=("$@")
[ ${#DIRS[@]} -gt 0 ] || DIRS=(src/support src/image)

TIDY="${CLANG_TIDY:-clang-tidy}"
if ! command -v "$TIDY" >/dev/null 2>&1; then
    echo "run_tidy: $TIDY not found on PATH; install clang-tidy or set" \
         "CLANG_TIDY. Skipping (not a failure on gcc-only hosts)." >&2
    exit 0
fi

if [ ! -f "$BUILD_DIR/compile_commands.json" ]; then
    cmake -B "$BUILD_DIR" -S "$REPO_ROOT" \
        -DCMAKE_EXPORT_COMPILE_COMMANDS=ON >/dev/null
fi

FILES=()
for dir in "${DIRS[@]}"; do
    while IFS= read -r f; do
        FILES+=("$f")
    done < <(find "$REPO_ROOT/$dir" -name '*.cc' | sort)
done

echo "run_tidy: ${#FILES[@]} files in: ${DIRS[*]}"
"$TIDY" -p "$BUILD_DIR" --quiet "${FILES[@]}"
echo "run_tidy: clean."
