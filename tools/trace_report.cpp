// trace_report: fold a coterie-scope Chrome trace_event JSON into a
// per-stage latency/throughput table.
//
// Usage: trace_report [--frames] <trace.json>
//
// Default mode reads the "X" (complete) events, groups them by span
// name (merging the per-thread streams with SampleSet::merge), and
// prints one row per stage sorted by total wall time. The top three
// stages by total time are flagged HOT — those are where optimisation
// effort pays.
//
// When the trace carries chaos-harness instants ("fault.<kind>.begin"
// / ".end", emitted by sim::FaultDriver with sim-time args) an extra
// fault-timeline section pairs them into episodes and folds the
// "net.retries" and "qoe.degraded_frames" counter tracks into
// per-episode deltas — how much resilience work each scripted fault
// caused. Exits nonzero on unreadable or malformed input.
//
// --frames switches to the causal frame-lifecycle report over the
// "frame" category events (emitted by obs::FrameTracer into a live
// trace, or by the flight recorder into a crash/boundary dump — the
// schema is identical): per-session deadline SLO summaries, a table
// of every deadline-missed frame with its critical path and full hop
// breakdown, and per-hop / per-client p99s.

#include <algorithm>
#include <cstdint>
#include <cstdio>
#include <cstring>
#include <map>
#include <string>
#include <tuple>
#include <vector>

#include "obs/json.hh"
#include "support/stats.hh"

namespace {

using coterie::obs::Json;
using coterie::SampleSet;

std::string
readFile(const char *path, bool &ok)
{
    std::FILE *f = std::fopen(path, "rb");
    if (!f) {
        ok = false;
        return {};
    }
    std::string text;
    char buf[1 << 16];
    for (;;) {
        const std::size_t n = std::fread(buf, 1, sizeof buf, f);
        if (n == 0)
            break;
        text.append(buf, n);
    }
    ok = std::ferror(f) == 0;
    std::fclose(f);
    return text;
}

struct Stage
{
    std::string name;
    std::string category;
    SampleSet durationsMs; // merged across all tids
    double totalMs = 0.0;
    double spanEndUs = 0.0; // latest event end, for throughput
    double spanBeginUs = 1e300;
};

/** One fault.<kind>.begin / .end instant from a chaos run. */
struct FaultMark
{
    std::string kind;
    bool begin = false;
    double tsUs = 0.0;
    double simMs = -1.0; // args.sim_ms when present
};

/** A paired episode on the fault timeline. */
struct FaultEpisodeRow
{
    std::string kind;
    double beginSimMs = -1.0;
    double endSimMs = -1.0; // -1 = trace ended mid-episode
    double beginTsUs = 0.0;
    double endTsUs = 1e300;
};

/** Last cumulative counter value at or before @p tsUs (0 before the
 *  first sample — the tracks are cumulative and start at zero). */
double
counterValueAt(const std::vector<std::pair<double, double>> &series,
               double tsUs)
{
    double value = 0.0;
    for (const auto &[ts, v] : series) {
        if (ts > tsUs)
            break;
        value = v;
    }
    return value;
}

// ---- --frames mode --------------------------------------------------

/** One stamped hop of a frame record ("frame.<hop>" X event). */
struct HopRow
{
    std::string hop;     // "transfer", "stall_wait", ...
    double beginMs = 0.0;
    double durMs = 0.0;
    bool wallOnly = false; // pid 1: wall-clock hop (flight dumps)
};

/** One causal frame record reassembled from its trace events. */
struct FrameRow
{
    std::string label; // session label (<game>/<N>p/<system>)
    int client = 0;
    std::uint64_t frame = 0;
    bool done = false;
    double doneMs = 0.0;
    double latencyMs = 0.0;
    double budgetMs = 0.0;
    bool miss = false;
    std::string criticalPath;
    std::vector<HopRow> hops;
};

int
runFramesReport(const Json &events, const char *path)
{
    using FrameKey = std::tuple<std::string, int, std::uint64_t>;
    std::map<FrameKey, FrameRow> records;

    for (const Json &e : events.items()) {
        if (!e.isObject() || !e.contains("cat") ||
            e.at("cat").asString() != "frame")
            continue;
        const std::string ph = e.at("ph").asString();
        const std::string name = e.at("name").asString();
        if (name.rfind("frame.", 0) != 0)
            continue;
        const Json &args = e.at("args");
        const FrameKey key{args.at("label").asString(),
                           static_cast<int>(
                               args.at("client").asNumber()),
                           static_cast<std::uint64_t>(
                               args.at("frame").asNumber())};
        FrameRow &row = records[key];
        row.label = std::get<0>(key);
        row.client = std::get<1>(key);
        row.frame = std::get<2>(key);
        if (ph == "i" && name == "frame.done") {
            row.done = true;
            row.doneMs = e.at("ts").asNumber() / 1000.0;
            row.latencyMs = args.at("latency_ms").asNumber();
            row.budgetMs = args.at("budget_ms").asNumber();
            row.miss = args.at("miss").asBool();
            row.criticalPath = args.at("critical_path").asString();
        } else if (ph == "X") {
            HopRow hop;
            hop.hop = name.substr(6);
            hop.beginMs = e.at("ts").asNumber() / 1000.0;
            hop.durMs = e.at("dur").asNumber() / 1000.0;
            hop.wallOnly =
                static_cast<int>(e.at("pid").asNumber(2)) == 1;
            row.hops.push_back(std::move(hop));
        }
    }

    if (records.empty()) {
        std::printf("trace_report: no frame events in %s\n", path);
        std::printf("(record a live trace with frame tracing, or use "
                    "a flight-recorder dump)\n");
        return 0;
    }

    // ---- per-session deadline SLO summary -------------------------
    struct SessionAgg
    {
        SampleSet latencies;
        std::uint64_t frames = 0;
        std::uint64_t misses = 0;
        double budgetMs = 0.0;
        std::map<std::string, std::uint64_t> missesByPath;
    };
    std::map<std::string, SessionAgg> sessions;
    std::map<std::pair<std::string, int>, SampleSet> byClient;
    std::map<std::string, SampleSet> byHop; // sim hops, merged
    std::vector<const FrameRow *> missed;
    for (const auto &[key, row] : records) {
        for (const HopRow &h : row.hops) {
            byHop[h.wallOnly ? h.hop + "[wall]" : h.hop].add(h.durMs);
        }
        if (!row.done)
            continue;
        SessionAgg &agg = sessions[row.label];
        ++agg.frames;
        agg.latencies.add(row.latencyMs);
        agg.budgetMs = row.budgetMs;
        byClient[{row.label, row.client}].add(row.latencyMs);
        if (row.miss) {
            ++agg.misses;
            ++agg.missesByPath[row.criticalPath];
            missed.push_back(&row);
        }
    }

    std::printf("Frame deadline report (%zu frame records)\n\n",
                records.size());
    std::printf("%-36s %8s %8s %9s %9s %9s %9s %9s\n", "session",
                "frames", "misses", "miss_pct", "budget", "p50_ms",
                "p99_ms", "p999_ms");
    for (auto &[label, agg] : sessions) {
        std::printf(
            "%-36s %8llu %8llu %8.2f%% %9.2f %9.3f %9.3f %9.3f\n",
            label.c_str(),
            static_cast<unsigned long long>(agg.frames),
            static_cast<unsigned long long>(agg.misses),
            agg.frames ? 100.0 * static_cast<double>(agg.misses) /
                             static_cast<double>(agg.frames)
                       : 0.0,
            agg.budgetMs, agg.latencies.percentile(50.0),
            agg.latencies.percentile(99.0),
            agg.latencies.percentile(99.9));
    }

    // ---- every deadline miss with its critical-path breakdown -----
    std::sort(missed.begin(), missed.end(),
              [](const FrameRow *a, const FrameRow *b) {
                  return a->latencyMs > b->latencyMs;
              });
    if (!missed.empty()) {
        std::printf("\nDeadline misses (%zu, worst first)\n",
                    missed.size());
        for (const FrameRow *row : missed) {
            std::printf("\n  %s client %d frame %llu: %.3f ms "
                        "(budget %.2f, over by %.3f) critical path: "
                        "%s\n",
                        row->label.c_str(), row->client,
                        static_cast<unsigned long long>(row->frame),
                        row->latencyMs, row->budgetMs,
                        row->latencyMs - row->budgetMs,
                        row->criticalPath.empty()
                            ? "?"
                            : row->criticalPath.c_str());
            std::vector<HopRow> hops = row->hops;
            std::sort(hops.begin(), hops.end(),
                      [](const HopRow &a, const HopRow &b) {
                          return a.beginMs < b.beginMs;
                      });
            for (const HopRow &h : hops) {
                std::printf("    %-14s %12.3f ms  +%.3f ms%s\n",
                            h.hop.c_str(), h.durMs, h.beginMs,
                            h.wallOnly ? "  [wall]" : "");
            }
        }
    } else {
        std::printf("\nNo deadline misses.\n");
    }

    // ---- per-hop and per-client p99s ------------------------------
    std::printf("\nPer-hop latency\n");
    std::printf("%-20s %8s %10s %10s %10s %10s\n", "hop", "count",
                "total_ms", "mean_ms", "p50_ms", "p99_ms");
    for (auto &[hop, samples] : byHop) {
        std::printf("%-20s %8zu %10.3f %10.4f %10.4f %10.4f\n",
                    hop.c_str(), samples.count(),
                    samples.mean() *
                        static_cast<double>(samples.count()),
                    samples.mean(), samples.percentile(50.0),
                    samples.percentile(99.0));
    }

    std::printf("\nPer-client frame latency\n");
    std::printf("%-36s %8s %8s %10s %10s\n", "session", "client",
                "frames", "p50_ms", "p99_ms");
    for (auto &[key, samples] : byClient) {
        std::printf("%-36s %8d %8zu %10.3f %10.3f\n",
                    key.first.c_str(), key.second, samples.count(),
                    samples.percentile(50.0),
                    samples.percentile(99.0));
    }
    return 0;
}

} // namespace

int
main(int argc, char **argv)
{
    bool framesMode = false;
    const char *path = nullptr;
    for (int i = 1; i < argc; ++i) {
        if (std::strcmp(argv[i], "--frames") == 0) {
            framesMode = true;
        } else if (path == nullptr) {
            path = argv[i];
        } else {
            path = nullptr;
            break;
        }
    }
    if (path == nullptr) {
        std::fprintf(stderr,
                     "usage: trace_report [--frames] <trace.json>\n");
        return 2;
    }

    bool readOk = true;
    const std::string text = readFile(path, readOk);
    if (!readOk) {
        std::fprintf(stderr, "trace_report: cannot read '%s'\n", path);
        return 1;
    }

    std::string error;
    const Json doc = Json::parse(text, &error);
    if (!error.empty()) {
        std::fprintf(stderr, "trace_report: parse error in '%s': %s\n",
                     path, error.c_str());
        return 1;
    }
    const Json &events = doc.at("traceEvents");
    if (!events.isArray()) {
        std::fprintf(stderr,
                     "trace_report: '%s' has no traceEvents array\n",
                     path);
        return 1;
    }

    if (framesMode)
        return runFramesReport(events, path);

    // Fold "X" events into per-(name, tid) sample sets first, then
    // merge the per-thread streams per stage — the same shard-fold the
    // Timer metrics do at snapshot time.
    std::map<std::pair<std::string, int>, SampleSet> perThread;
    std::map<std::string, Stage> stages;
    std::vector<FaultMark> faultMarks;
    std::map<std::string, std::vector<std::pair<double, double>>>
        counters; // cumulative (ts, value) tracks
    std::size_t spanCount = 0;
    double lastTsUs = 0.0;
    for (const Json &e : events.items()) {
        if (!e.isObject())
            continue;
        const std::string ph = e.at("ph").asString();
        const std::string name = e.at("name").asString();
        const double tsUs = e.at("ts").asNumber();
        if (ph == "i" || ph == "C" || ph == "X")
            lastTsUs = std::max(lastTsUs, tsUs);
        if (ph == "i" && name.rfind("fault.", 0) == 0) {
            FaultMark mark;
            mark.tsUs = tsUs;
            mark.simMs = e.at("args").at("sim_ms").asNumber(-1.0);
            const std::string tail = name.substr(6);
            if (tail.size() > 6 &&
                tail.compare(tail.size() - 6, 6, ".begin") == 0) {
                mark.kind = tail.substr(0, tail.size() - 6);
                mark.begin = true;
            } else if (tail.size() > 4 &&
                       tail.compare(tail.size() - 4, 4, ".end") == 0) {
                mark.kind = tail.substr(0, tail.size() - 4);
            } else {
                continue;
            }
            faultMarks.push_back(std::move(mark));
            continue;
        }
        if (ph == "C") {
            counters[name].emplace_back(
                tsUs, e.at("args").at("value").asNumber());
            continue;
        }
        if (ph != "X")
            continue;
        // Frame-lifecycle events live on the *sim* timeline (pid 2);
        // folding them into this wall-clock stage table would mix
        // units. They get their own view: `trace_report --frames`.
        if (e.contains("cat") && e.at("cat").asString() == "frame")
            continue;
        const int tid = static_cast<int>(e.at("tid").asNumber());
        const double durUs = e.at("dur").asNumber();
        const double durMs = durUs / 1000.0;
        perThread[{name, tid}].add(durMs);
        Stage &stage = stages[name];
        stage.name = name;
        if (stage.category.empty() && e.contains("cat"))
            stage.category = e.at("cat").asString();
        stage.totalMs += durMs;
        stage.spanBeginUs = std::min(stage.spanBeginUs, tsUs);
        stage.spanEndUs = std::max(stage.spanEndUs, tsUs + durUs);
        ++spanCount;
    }
    for (auto &[key, samples] : perThread)
        stages[key.first].durationsMs.merge(samples);

    if (stages.empty()) {
        std::printf("trace_report: no complete (\"X\") spans in %s\n",
                    path);
    } else {
        std::vector<const Stage *> rows;
        rows.reserve(stages.size());
        for (const auto &[name, stage] : stages)
            rows.push_back(&stage);
        std::sort(rows.begin(), rows.end(),
                  [](const Stage *a, const Stage *b) {
                      return a->totalMs > b->totalMs;
                  });

        std::printf("%-32s %-8s %8s %10s %10s %10s %10s %10s  %s\n",
                    "stage", "cat", "count", "total_ms", "mean_ms",
                    "p50_ms", "p99_ms", "ev_per_s", "");
        for (std::size_t i = 0; i < rows.size(); ++i) {
            const Stage &s = *rows[i];
            SampleSet samples = s.durationsMs; // percentile() sorts
            const double windowS = (s.spanEndUs - s.spanBeginUs) / 1e6;
            const double throughput =
                windowS > 0.0
                    ? static_cast<double>(samples.count()) / windowS
                    : 0.0;
            std::printf("%-32s %-8s %8zu %10.3f %10.4f %10.4f %10.4f "
                        "%10.1f  %s\n",
                        s.name.c_str(), s.category.c_str(),
                        samples.count(), s.totalMs, samples.mean(),
                        samples.percentile(50.0),
                        samples.percentile(99.0), throughput,
                        i < 3 ? "HOT" : "");
        }
        std::printf("\n%zu spans across %zu stages\n", spanCount,
                    stages.size());
    }

    // Counter tracks are appended in event order; sort once by
    // timestamp for every section that reads them.
    for (auto &[name, series] : counters)
        std::sort(series.begin(), series.end());

    // ---- Render hot path (bvh.* + pano-cache counter tracks) ------
    const auto lastCounter = [&](const char *name) -> double {
        const auto it = counters.find(name);
        if (it == counters.end() || it->second.empty())
            return -1.0;
        return it->second.back().second;
    };
    const double bvhNodes = lastCounter("bvh.nodes_visited");
    const double bvhLeafTests = lastCounter("bvh.leaf_tests");
    const double panoHits = lastCounter("server.pano_cache.hits");
    const double panoMisses = lastCounter("server.pano_cache.misses");
    if (bvhNodes >= 0.0 || panoHits >= 0.0 || panoMisses >= 0.0) {
        std::size_t frames = 0;
        for (const char *span : {"render.panorama",
                                 "render.perspective"}) {
            const auto it = stages.find(span);
            if (it != stages.end())
                frames += it->second.durationsMs.count();
        }
        std::printf("\nRender hot path\n");
        if (bvhNodes >= 0.0) {
            std::printf("  %-28s %14.0f total", "bvh.nodes_visited",
                        bvhNodes);
            if (frames > 0)
                std::printf("  %12.1f / frame",
                            bvhNodes / static_cast<double>(frames));
            std::printf("\n");
        }
        if (bvhLeafTests >= 0.0) {
            std::printf("  %-28s %14.0f total", "bvh.leaf_tests",
                        bvhLeafTests);
            if (frames > 0)
                std::printf("  %12.1f / frame",
                            bvhLeafTests / static_cast<double>(frames));
            std::printf("\n");
        }
        if (panoHits >= 0.0 || panoMisses >= 0.0) {
            const double hits = std::max(panoHits, 0.0);
            const double misses = std::max(panoMisses, 0.0);
            const double lookups = hits + misses;
            std::printf("  %-28s hits %.0f  misses %.0f",
                        "server.pano_cache", hits, misses);
            if (lookups > 0.0)
                std::printf("  hit ratio %.1f%%",
                            100.0 * hits / lookups);
            std::printf("\n");
        }
        if (frames > 0)
            std::printf("  (%zu rendered frames in trace)\n", frames);
    }

    // ---- Fault timeline (chaos runs only) -------------------------
    if (!faultMarks.empty()) {
        std::sort(faultMarks.begin(), faultMarks.end(),
                  [](const FaultMark &a, const FaultMark &b) {
                      return a.tsUs < b.tsUs;
                  });

        // Pair begin/end marks per kind, FIFO in timestamp order.
        std::vector<FaultEpisodeRow> episodes;
        std::map<std::string, std::vector<std::size_t>> open;
        for (const FaultMark &mark : faultMarks) {
            if (mark.begin) {
                FaultEpisodeRow row;
                row.kind = mark.kind;
                row.beginSimMs = mark.simMs;
                row.beginTsUs = mark.tsUs;
                row.endTsUs = lastTsUs; // until matched
                open[mark.kind].push_back(episodes.size());
                episodes.push_back(std::move(row));
            } else if (auto &queue = open[mark.kind]; !queue.empty()) {
                FaultEpisodeRow &row = episodes[queue.front()];
                queue.erase(queue.begin());
                row.endSimMs = mark.simMs;
                row.endTsUs = mark.tsUs;
            }
        }

        const auto &retries = counters["net.retries"];
        const auto &degraded = counters["qoe.degraded_frames"];
        std::printf("\nFault timeline (%zu episodes)\n",
                    episodes.size());
        std::printf("%-20s %12s %12s %10s %10s  %s\n", "fault",
                    "begin_ms", "end_ms", "retries", "degraded", "");
        for (const FaultEpisodeRow &row : episodes) {
            const double retryDelta =
                counterValueAt(retries, row.endTsUs) -
                counterValueAt(retries, row.beginTsUs);
            const double degradedDelta =
                counterValueAt(degraded, row.endTsUs) -
                counterValueAt(degraded, row.beginTsUs);
            char endBuf[32];
            if (row.endSimMs >= 0.0)
                std::snprintf(endBuf, sizeof endBuf, "%12.1f",
                              row.endSimMs);
            else
                std::snprintf(endBuf, sizeof endBuf, "%12s", "(open)");
            std::printf("%-20s %12.1f %s %10.0f %10.0f  %s\n",
                        row.kind.c_str(), row.beginSimMs, endBuf,
                        retryDelta, degradedDelta,
                        row.endSimMs < 0.0 ? "trace ended mid-episode"
                                           : "");
        }
    }
    return 0;
}
