// trace_report: fold a coterie-scope Chrome trace_event JSON into a
// per-stage latency/throughput table.
//
// Usage: trace_report <trace.json>
//
// Reads the "X" (complete) events, groups them by span name (merging
// the per-thread streams with SampleSet::merge), and prints one row
// per stage sorted by total wall time. The top three stages by total
// time are flagged HOT — those are where optimisation effort pays.
//
// When the trace carries chaos-harness instants ("fault.<kind>.begin"
// / ".end", emitted by sim::FaultDriver with sim-time args) an extra
// fault-timeline section pairs them into episodes and folds the
// "net.retries" and "qoe.degraded_frames" counter tracks into
// per-episode deltas — how much resilience work each scripted fault
// caused. Exits nonzero on unreadable or malformed input.

#include <algorithm>
#include <cstdio>
#include <cstring>
#include <map>
#include <string>
#include <vector>

#include "obs/json.hh"
#include "support/stats.hh"

namespace {

using coterie::obs::Json;
using coterie::SampleSet;

std::string
readFile(const char *path, bool &ok)
{
    std::FILE *f = std::fopen(path, "rb");
    if (!f) {
        ok = false;
        return {};
    }
    std::string text;
    char buf[1 << 16];
    for (;;) {
        const std::size_t n = std::fread(buf, 1, sizeof buf, f);
        if (n == 0)
            break;
        text.append(buf, n);
    }
    ok = std::ferror(f) == 0;
    std::fclose(f);
    return text;
}

struct Stage
{
    std::string name;
    std::string category;
    SampleSet durationsMs; // merged across all tids
    double totalMs = 0.0;
    double spanEndUs = 0.0; // latest event end, for throughput
    double spanBeginUs = 1e300;
};

/** One fault.<kind>.begin / .end instant from a chaos run. */
struct FaultMark
{
    std::string kind;
    bool begin = false;
    double tsUs = 0.0;
    double simMs = -1.0; // args.sim_ms when present
};

/** A paired episode on the fault timeline. */
struct FaultEpisodeRow
{
    std::string kind;
    double beginSimMs = -1.0;
    double endSimMs = -1.0; // -1 = trace ended mid-episode
    double beginTsUs = 0.0;
    double endTsUs = 1e300;
};

/** Last cumulative counter value at or before @p tsUs (0 before the
 *  first sample — the tracks are cumulative and start at zero). */
double
counterValueAt(const std::vector<std::pair<double, double>> &series,
               double tsUs)
{
    double value = 0.0;
    for (const auto &[ts, v] : series) {
        if (ts > tsUs)
            break;
        value = v;
    }
    return value;
}

} // namespace

int
main(int argc, char **argv)
{
    if (argc != 2) {
        std::fprintf(stderr, "usage: trace_report <trace.json>\n");
        return 2;
    }

    bool readOk = true;
    const std::string text = readFile(argv[1], readOk);
    if (!readOk) {
        std::fprintf(stderr, "trace_report: cannot read '%s'\n",
                     argv[1]);
        return 1;
    }

    std::string error;
    const Json doc = Json::parse(text, &error);
    if (!error.empty()) {
        std::fprintf(stderr, "trace_report: parse error in '%s': %s\n",
                     argv[1], error.c_str());
        return 1;
    }
    const Json &events = doc.at("traceEvents");
    if (!events.isArray()) {
        std::fprintf(stderr,
                     "trace_report: '%s' has no traceEvents array\n",
                     argv[1]);
        return 1;
    }

    // Fold "X" events into per-(name, tid) sample sets first, then
    // merge the per-thread streams per stage — the same shard-fold the
    // Timer metrics do at snapshot time.
    std::map<std::pair<std::string, int>, SampleSet> perThread;
    std::map<std::string, Stage> stages;
    std::vector<FaultMark> faultMarks;
    std::map<std::string, std::vector<std::pair<double, double>>>
        counters; // cumulative (ts, value) tracks
    std::size_t spanCount = 0;
    double lastTsUs = 0.0;
    for (const Json &e : events.items()) {
        if (!e.isObject())
            continue;
        const std::string ph = e.at("ph").asString();
        const std::string name = e.at("name").asString();
        const double tsUs = e.at("ts").asNumber();
        if (ph == "i" || ph == "C" || ph == "X")
            lastTsUs = std::max(lastTsUs, tsUs);
        if (ph == "i" && name.rfind("fault.", 0) == 0) {
            FaultMark mark;
            mark.tsUs = tsUs;
            mark.simMs = e.at("args").at("sim_ms").asNumber(-1.0);
            const std::string tail = name.substr(6);
            if (tail.size() > 6 &&
                tail.compare(tail.size() - 6, 6, ".begin") == 0) {
                mark.kind = tail.substr(0, tail.size() - 6);
                mark.begin = true;
            } else if (tail.size() > 4 &&
                       tail.compare(tail.size() - 4, 4, ".end") == 0) {
                mark.kind = tail.substr(0, tail.size() - 4);
            } else {
                continue;
            }
            faultMarks.push_back(std::move(mark));
            continue;
        }
        if (ph == "C") {
            counters[name].emplace_back(
                tsUs, e.at("args").at("value").asNumber());
            continue;
        }
        if (ph != "X")
            continue;
        const int tid = static_cast<int>(e.at("tid").asNumber());
        const double durUs = e.at("dur").asNumber();
        const double durMs = durUs / 1000.0;
        perThread[{name, tid}].add(durMs);
        Stage &stage = stages[name];
        stage.name = name;
        if (stage.category.empty() && e.contains("cat"))
            stage.category = e.at("cat").asString();
        stage.totalMs += durMs;
        stage.spanBeginUs = std::min(stage.spanBeginUs, tsUs);
        stage.spanEndUs = std::max(stage.spanEndUs, tsUs + durUs);
        ++spanCount;
    }
    for (auto &[key, samples] : perThread)
        stages[key.first].durationsMs.merge(samples);

    if (stages.empty()) {
        std::printf("trace_report: no complete (\"X\") spans in %s\n",
                    argv[1]);
    } else {
        std::vector<const Stage *> rows;
        rows.reserve(stages.size());
        for (const auto &[name, stage] : stages)
            rows.push_back(&stage);
        std::sort(rows.begin(), rows.end(),
                  [](const Stage *a, const Stage *b) {
                      return a->totalMs > b->totalMs;
                  });

        std::printf("%-32s %-8s %8s %10s %10s %10s %10s %10s  %s\n",
                    "stage", "cat", "count", "total_ms", "mean_ms",
                    "p50_ms", "p99_ms", "ev_per_s", "");
        for (std::size_t i = 0; i < rows.size(); ++i) {
            const Stage &s = *rows[i];
            SampleSet samples = s.durationsMs; // percentile() sorts
            const double windowS = (s.spanEndUs - s.spanBeginUs) / 1e6;
            const double throughput =
                windowS > 0.0
                    ? static_cast<double>(samples.count()) / windowS
                    : 0.0;
            std::printf("%-32s %-8s %8zu %10.3f %10.4f %10.4f %10.4f "
                        "%10.1f  %s\n",
                        s.name.c_str(), s.category.c_str(),
                        samples.count(), s.totalMs, samples.mean(),
                        samples.percentile(50.0),
                        samples.percentile(99.0), throughput,
                        i < 3 ? "HOT" : "");
        }
        std::printf("\n%zu spans across %zu stages\n", spanCount,
                    stages.size());
    }

    // Counter tracks are appended in event order; sort once by
    // timestamp for every section that reads them.
    for (auto &[name, series] : counters)
        std::sort(series.begin(), series.end());

    // ---- Render hot path (bvh.* + pano-cache counter tracks) ------
    const auto lastCounter = [&](const char *name) -> double {
        const auto it = counters.find(name);
        if (it == counters.end() || it->second.empty())
            return -1.0;
        return it->second.back().second;
    };
    const double bvhNodes = lastCounter("bvh.nodes_visited");
    const double bvhLeafTests = lastCounter("bvh.leaf_tests");
    const double panoHits = lastCounter("server.pano_cache.hits");
    const double panoMisses = lastCounter("server.pano_cache.misses");
    if (bvhNodes >= 0.0 || panoHits >= 0.0 || panoMisses >= 0.0) {
        std::size_t frames = 0;
        for (const char *span : {"render.panorama",
                                 "render.perspective"}) {
            const auto it = stages.find(span);
            if (it != stages.end())
                frames += it->second.durationsMs.count();
        }
        std::printf("\nRender hot path\n");
        if (bvhNodes >= 0.0) {
            std::printf("  %-28s %14.0f total", "bvh.nodes_visited",
                        bvhNodes);
            if (frames > 0)
                std::printf("  %12.1f / frame",
                            bvhNodes / static_cast<double>(frames));
            std::printf("\n");
        }
        if (bvhLeafTests >= 0.0) {
            std::printf("  %-28s %14.0f total", "bvh.leaf_tests",
                        bvhLeafTests);
            if (frames > 0)
                std::printf("  %12.1f / frame",
                            bvhLeafTests / static_cast<double>(frames));
            std::printf("\n");
        }
        if (panoHits >= 0.0 || panoMisses >= 0.0) {
            const double hits = std::max(panoHits, 0.0);
            const double misses = std::max(panoMisses, 0.0);
            const double lookups = hits + misses;
            std::printf("  %-28s hits %.0f  misses %.0f",
                        "server.pano_cache", hits, misses);
            if (lookups > 0.0)
                std::printf("  hit ratio %.1f%%",
                            100.0 * hits / lookups);
            std::printf("\n");
        }
        if (frames > 0)
            std::printf("  (%zu rendered frames in trace)\n", frames);
    }

    // ---- Fault timeline (chaos runs only) -------------------------
    if (!faultMarks.empty()) {
        std::sort(faultMarks.begin(), faultMarks.end(),
                  [](const FaultMark &a, const FaultMark &b) {
                      return a.tsUs < b.tsUs;
                  });

        // Pair begin/end marks per kind, FIFO in timestamp order.
        std::vector<FaultEpisodeRow> episodes;
        std::map<std::string, std::vector<std::size_t>> open;
        for (const FaultMark &mark : faultMarks) {
            if (mark.begin) {
                FaultEpisodeRow row;
                row.kind = mark.kind;
                row.beginSimMs = mark.simMs;
                row.beginTsUs = mark.tsUs;
                row.endTsUs = lastTsUs; // until matched
                open[mark.kind].push_back(episodes.size());
                episodes.push_back(std::move(row));
            } else if (auto &queue = open[mark.kind]; !queue.empty()) {
                FaultEpisodeRow &row = episodes[queue.front()];
                queue.erase(queue.begin());
                row.endSimMs = mark.simMs;
                row.endTsUs = mark.tsUs;
            }
        }

        const auto &retries = counters["net.retries"];
        const auto &degraded = counters["qoe.degraded_frames"];
        std::printf("\nFault timeline (%zu episodes)\n",
                    episodes.size());
        std::printf("%-20s %12s %12s %10s %10s  %s\n", "fault",
                    "begin_ms", "end_ms", "retries", "degraded", "");
        for (const FaultEpisodeRow &row : episodes) {
            const double retryDelta =
                counterValueAt(retries, row.endTsUs) -
                counterValueAt(retries, row.beginTsUs);
            const double degradedDelta =
                counterValueAt(degraded, row.endTsUs) -
                counterValueAt(degraded, row.beginTsUs);
            char endBuf[32];
            if (row.endSimMs >= 0.0)
                std::snprintf(endBuf, sizeof endBuf, "%12.1f",
                              row.endSimMs);
            else
                std::snprintf(endBuf, sizeof endBuf, "%12s", "(open)");
            std::printf("%-20s %12.1f %s %10.0f %10.0f  %s\n",
                        row.kind.c_str(), row.beginSimMs, endBuf,
                        retryDelta, degradedDelta,
                        row.endSimMs < 0.0 ? "trace ended mid-episode"
                                           : "");
        }
    }
    return 0;
}
