// trace_report: fold a coterie-scope Chrome trace_event JSON into a
// per-stage latency/throughput table.
//
// Usage: trace_report <trace.json>
//
// Reads the "X" (complete) events, groups them by span name (merging
// the per-thread streams with SampleSet::merge), and prints one row
// per stage sorted by total wall time. The top three stages by total
// time are flagged HOT — those are where optimisation effort pays.
// Exits nonzero on unreadable or malformed input.

#include <algorithm>
#include <cstdio>
#include <cstring>
#include <map>
#include <string>
#include <vector>

#include "obs/json.hh"
#include "support/stats.hh"

namespace {

using coterie::obs::Json;
using coterie::SampleSet;

std::string
readFile(const char *path, bool &ok)
{
    std::FILE *f = std::fopen(path, "rb");
    if (!f) {
        ok = false;
        return {};
    }
    std::string text;
    char buf[1 << 16];
    for (;;) {
        const std::size_t n = std::fread(buf, 1, sizeof buf, f);
        if (n == 0)
            break;
        text.append(buf, n);
    }
    ok = std::ferror(f) == 0;
    std::fclose(f);
    return text;
}

struct Stage
{
    std::string name;
    std::string category;
    SampleSet durationsMs; // merged across all tids
    double totalMs = 0.0;
    double spanEndUs = 0.0; // latest event end, for throughput
    double spanBeginUs = 1e300;
};

} // namespace

int
main(int argc, char **argv)
{
    if (argc != 2) {
        std::fprintf(stderr, "usage: trace_report <trace.json>\n");
        return 2;
    }

    bool readOk = true;
    const std::string text = readFile(argv[1], readOk);
    if (!readOk) {
        std::fprintf(stderr, "trace_report: cannot read '%s'\n",
                     argv[1]);
        return 1;
    }

    std::string error;
    const Json doc = Json::parse(text, &error);
    if (!error.empty()) {
        std::fprintf(stderr, "trace_report: parse error in '%s': %s\n",
                     argv[1], error.c_str());
        return 1;
    }
    const Json &events = doc.at("traceEvents");
    if (!events.isArray()) {
        std::fprintf(stderr,
                     "trace_report: '%s' has no traceEvents array\n",
                     argv[1]);
        return 1;
    }

    // Fold "X" events into per-(name, tid) sample sets first, then
    // merge the per-thread streams per stage — the same shard-fold the
    // Timer metrics do at snapshot time.
    std::map<std::pair<std::string, int>, SampleSet> perThread;
    std::map<std::string, Stage> stages;
    std::size_t spanCount = 0;
    for (const Json &e : events.items()) {
        if (!e.isObject() || e.at("ph").asString() != "X")
            continue;
        const std::string name = e.at("name").asString();
        const int tid = static_cast<int>(e.at("tid").asNumber());
        const double tsUs = e.at("ts").asNumber();
        const double durUs = e.at("dur").asNumber();
        const double durMs = durUs / 1000.0;
        perThread[{name, tid}].add(durMs);
        Stage &stage = stages[name];
        stage.name = name;
        if (stage.category.empty() && e.contains("cat"))
            stage.category = e.at("cat").asString();
        stage.totalMs += durMs;
        stage.spanBeginUs = std::min(stage.spanBeginUs, tsUs);
        stage.spanEndUs = std::max(stage.spanEndUs, tsUs + durUs);
        ++spanCount;
    }
    for (auto &[key, samples] : perThread)
        stages[key.first].durationsMs.merge(samples);

    if (stages.empty()) {
        std::printf("trace_report: no complete (\"X\") spans in %s\n",
                    argv[1]);
        return 0;
    }

    std::vector<const Stage *> rows;
    rows.reserve(stages.size());
    for (const auto &[name, stage] : stages)
        rows.push_back(&stage);
    std::sort(rows.begin(), rows.end(),
              [](const Stage *a, const Stage *b) {
                  return a->totalMs > b->totalMs;
              });

    std::printf("%-32s %-8s %8s %10s %10s %10s %10s %10s  %s\n",
                "stage", "cat", "count", "total_ms", "mean_ms",
                "p50_ms", "p99_ms", "ev_per_s", "");
    for (std::size_t i = 0; i < rows.size(); ++i) {
        const Stage &s = *rows[i];
        SampleSet samples = s.durationsMs; // percentile() sorts
        const double windowS =
            (s.spanEndUs - s.spanBeginUs) / 1e6;
        const double throughput =
            windowS > 0.0
                ? static_cast<double>(samples.count()) / windowS
                : 0.0;
        std::printf(
            "%-32s %-8s %8zu %10.3f %10.4f %10.4f %10.4f %10.1f  %s\n",
            s.name.c_str(), s.category.c_str(), samples.count(),
            s.totalMs, samples.mean(), samples.percentile(50.0),
            samples.percentile(99.0), throughput,
            i < 3 ? "HOT" : "");
    }
    std::printf("\n%zu spans across %zu stages\n", spanCount,
                stages.size());
    return 0;
}
