// bench_history: compare two bench-result JSON documents (or two
// results/ directories) metric by metric.
//
// Usage:
//   bench_history [options] <baseline.json> <candidate.json>
//   bench_history [options] <baseline_dir> <candidate_dir>
//
// Options:
//   --threshold F   allowed fractional regression before failing
//                   (default 0.10 = 10%)
//   --only SUBSTR   restrict the comparison to metric paths containing
//                   SUBSTR (repeatable)
//
// Every numeric leaf is flattened to a '/'-joined path and compared.
// Direction is inferred from the metric name: timings (`*_ms`, `*_s`,
// `*_ns`) regress when they grow, rates and ratios (`*speedup*`,
// `*_per_s`, `*hit_ratio*`, `*fps*`) regress when they shrink; metrics
// with no recognizable direction are reported but never gate. In
// directory mode, `BENCH_*.json` files present in both directories are
// compared pairwise (files present on one side only are noted).
//
// Exit status: 0 = no regression beyond the threshold, 1 = at least
// one gated metric regressed, 2 = usage/IO error. This is the CI
// perf-smoke gate: a regression fails with a named metric instead of
// silently drifting the tracked trajectory.

#include <algorithm>
#include <cstdio>
#include <cstring>
#include <filesystem>
#include <map>
#include <string>
#include <vector>

#include "obs/json.hh"

namespace {

namespace fs = std::filesystem;
using coterie::obs::Json;

std::string
readFile(const std::string &path, bool &ok)
{
    std::FILE *f = std::fopen(path.c_str(), "rb");
    if (!f) {
        ok = false;
        return {};
    }
    std::string text;
    char buf[1 << 16];
    for (;;) {
        const std::size_t n = std::fread(buf, 1, sizeof buf, f);
        if (n == 0)
            break;
        text.append(buf, n);
    }
    ok = std::ferror(f) == 0;
    std::fclose(f);
    return text;
}

/** Flatten every numeric leaf into path -> value. */
void
flatten(const Json &node, const std::string &prefix,
        std::map<std::string, double> &out)
{
    if (node.isNumber()) {
        out[prefix] = node.asNumber();
    } else if (node.isObject()) {
        for (const auto &[key, value] : node.members())
            flatten(value,
                    prefix.empty() ? key : prefix + "/" + key, out);
    } else if (node.isArray()) {
        std::size_t i = 0;
        for (const Json &value : node.items())
            flatten(value, prefix + "/" + std::to_string(i++), out);
    }
}

/** Which way is better for this metric path? */
enum class Direction { LowerBetter, HigherBetter, Unknown };

bool
endsWith(const std::string &s, const char *suffix)
{
    const std::size_t n = std::strlen(suffix);
    return s.size() >= n &&
           s.compare(s.size() - n, n, suffix) == 0;
}

Direction
directionOf(const std::string &path)
{
    // Leaf name decides (paths are '/'-joined).
    const std::size_t slash = path.rfind('/');
    const std::string leaf =
        slash == std::string::npos ? path : path.substr(slash + 1);
    if (leaf.find("speedup") != std::string::npos ||
        leaf.find("_per_s") != std::string::npos ||
        leaf.find("hit_ratio") != std::string::npos ||
        leaf.find("fps") != std::string::npos)
        return Direction::HigherBetter;
    if (endsWith(leaf, "_ms") || endsWith(leaf, "_s") ||
        endsWith(leaf, "_ns") || endsWith(leaf, "_us") ||
        leaf.find("_ms_") != std::string::npos ||
        endsWith(leaf, "_bytes") || endsWith(leaf, "_kb"))
        return Direction::LowerBetter;
    return Direction::Unknown;
}

struct CompareStats
{
    std::size_t compared = 0;
    std::size_t regressions = 0;
};

/** Compare two flattened metric maps; print deltas, count failures. */
void
compareDocs(const std::string &title,
            const std::map<std::string, double> &base,
            const std::map<std::string, double> &cand,
            double threshold, const std::vector<std::string> &only,
            CompareStats &stats)
{
    std::printf("== %s\n", title.c_str());
    std::printf("%-56s %14s %14s %9s  %s\n", "metric", "baseline",
                "candidate", "delta", "");
    for (const auto &[path, baseValue] : base) {
        if (!only.empty()) {
            bool match = false;
            for (const std::string &o : only)
                if (path.find(o) != std::string::npos) {
                    match = true;
                    break;
                }
            if (!match)
                continue;
        }
        const auto it = cand.find(path);
        if (it == cand.end()) {
            std::printf("%-56s %14.4f %14s\n", path.c_str(),
                        baseValue, "(gone)");
            continue;
        }
        const double candValue = it->second;
        ++stats.compared;
        const double delta = candValue - baseValue;
        const double rel =
            baseValue != 0.0 ? delta / baseValue : 0.0;
        const Direction dir = directionOf(path);
        bool regressed = false;
        if (baseValue != 0.0) {
            if (dir == Direction::LowerBetter && rel > threshold)
                regressed = true;
            if (dir == Direction::HigherBetter && rel < -threshold)
                regressed = true;
        }
        if (regressed)
            ++stats.regressions;
        std::printf("%-56s %14.4f %14.4f %+8.1f%%  %s\n",
                    path.c_str(), baseValue, candValue, 100.0 * rel,
                    regressed            ? "REGRESSION"
                    : dir == Direction::Unknown ? "(ungated)"
                                                : "");
    }
    for (const auto &[path, candValue] : cand) {
        if (base.count(path))
            continue;
        if (!only.empty()) {
            bool match = false;
            for (const std::string &o : only)
                if (path.find(o) != std::string::npos) {
                    match = true;
                    break;
                }
            if (!match)
                continue;
        }
        std::printf("%-56s %14s %14.4f  (new)\n", path.c_str(), "-",
                    candValue);
    }
}

bool
loadDoc(const std::string &path, std::map<std::string, double> &out)
{
    bool ok = true;
    const std::string text = readFile(path, ok);
    if (!ok) {
        std::fprintf(stderr, "bench_history: cannot read '%s'\n",
                     path.c_str());
        return false;
    }
    std::string error;
    const Json doc = Json::parse(text, &error);
    if (!error.empty()) {
        std::fprintf(stderr,
                     "bench_history: parse error in '%s': %s\n",
                     path.c_str(), error.c_str());
        return false;
    }
    flatten(doc, "", out);
    return true;
}

/** BENCH_*.json file names under a directory (sorted). */
std::vector<std::string>
benchFiles(const std::string &dir)
{
    std::vector<std::string> names;
    for (const auto &entry : fs::directory_iterator(dir)) {
        if (!entry.is_regular_file())
            continue;
        const std::string name = entry.path().filename().string();
        if (name.rfind("BENCH_", 0) == 0 &&
            endsWith(name, ".json"))
            names.push_back(name);
    }
    std::sort(names.begin(), names.end());
    return names;
}

} // namespace

int
main(int argc, char **argv)
{
    double threshold = 0.10;
    std::vector<std::string> only;
    std::vector<std::string> paths;
    for (int i = 1; i < argc; ++i) {
        if (std::strcmp(argv[i], "--threshold") == 0 && i + 1 < argc) {
            threshold = std::atof(argv[++i]);
        } else if (std::strcmp(argv[i], "--only") == 0 &&
                   i + 1 < argc) {
            only.emplace_back(argv[++i]);
        } else {
            paths.emplace_back(argv[i]);
        }
    }
    if (paths.size() != 2) {
        std::fprintf(stderr,
                     "usage: bench_history [--threshold F] "
                     "[--only SUBSTR] <baseline> <candidate>\n"
                     "       (two BENCH_*.json files or two results "
                     "directories)\n");
        return 2;
    }

    CompareStats stats;
    const bool dirMode =
        fs::is_directory(paths[0]) && fs::is_directory(paths[1]);
    if (dirMode) {
        const auto baseNames = benchFiles(paths[0]);
        const auto candNames = benchFiles(paths[1]);
        bool any = false;
        for (const std::string &name : baseNames) {
            if (std::find(candNames.begin(), candNames.end(), name) ==
                candNames.end()) {
                std::printf("-- %s only in %s\n", name.c_str(),
                            paths[0].c_str());
                continue;
            }
            std::map<std::string, double> base, cand;
            if (!loadDoc(paths[0] + "/" + name, base) ||
                !loadDoc(paths[1] + "/" + name, cand))
                return 2;
            compareDocs(name, base, cand, threshold, only, stats);
            any = true;
        }
        for (const std::string &name : candNames)
            if (std::find(baseNames.begin(), baseNames.end(), name) ==
                baseNames.end())
                std::printf("-- %s only in %s\n", name.c_str(),
                            paths[1].c_str());
        if (!any)
            std::printf("bench_history: no common BENCH_*.json "
                        "files\n");
    } else {
        std::map<std::string, double> base, cand;
        if (!loadDoc(paths[0], base) || !loadDoc(paths[1], cand))
            return 2;
        compareDocs(paths[0] + " -> " + paths[1], base, cand,
                    threshold, only, stats);
    }

    std::printf("\n%zu metrics compared, %zu regression%s beyond "
                "%.0f%%\n",
                stats.compared, stats.regressions,
                stats.regressions == 1 ? "" : "s", 100.0 * threshold);
    return stats.regressions > 0 ? 1 : 0;
}
