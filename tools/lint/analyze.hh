/**
 * @file
 * coterie-analyze — cross-translation-unit analyses.
 *
 * Three repo-wide passes over the per-file models (model.hh):
 *
 *  1. Include-graph layering (`analyzeLayering`): resolves every
 *     project include, enforces the declared layer order
 *     (support → obs → geom/image → world/render/trace →
 *     device/net/sim → core → bench/tools/tests) and reports include
 *     cycles. Legitimate exceptions live in a checked-in allowlist
 *     (tools/lint/layering_allowlist.txt).
 *
 *  2. Static lock-order (`analyzeLockOrder`): resolves lock
 *     expressions against the repo's mutex declarations, merges
 *     COTERIE_REQUIRES contracts from declarations and definitions,
 *     adds one level of same-class call propagation, and reports any
 *     cycle in the resulting lock-order graph as a potential deadlock
 *     with a witness file:line per edge. Bare mutex names that
 *     resolve to more than one declaration are reported as
 *     `lock-order-ambiguity` — ambiguous names make the order graph
 *     (and human reasoning about it) unsound.
 *
 *  3. Unused includes (`analyzeUnusedIncludes`): a direct project
 *     include is flagged when no identifier exported by the included
 *     header *or anything it transitively includes* is used by the
 *     including file. The transitive closure makes the pass
 *     conservative: an include that only re-exports a header the
 *     includer does use is never flagged.
 *
 * Suppression works like the per-file rules: `// lint:allow(rule)` on
 * the finding line or the line above. Callers apply it via
 * `applySuppressions` with the raw file contents.
 *
 * `includeGraphDot` / `lockOrderDot` render both graphs as Graphviz
 * for `coterie-lint --graph=dot` (DESIGN.md §7).
 */

#pragma once

#include "lint.hh"
#include "model.hh"

#include <map>
#include <set>
#include <string>
#include <utility>
#include <vector>

namespace coterie::lint {

/** The whole repo (or a fixture set) as per-file models. */
struct RepoModel
{
    std::vector<FileModel> files;
    std::map<std::string, std::size_t> byPath;
    /** Raw contents, kept for suppression-comment lookup. */
    std::map<std::string, std::string> contents;
};

/** Build a repo model from (repo-relative path, content) pairs. */
RepoModel buildRepoModel(
    const std::vector<std::pair<std::string, std::string>> &files);

/** Layer order + allowlisted exceptions for the layering pass. */
struct LayerConfig
{
    /** '/'-terminated path prefix -> layer number (lower = lower). */
    std::vector<std::pair<std::string, int>> prefixes;
    /** Allowed (includer path, resolved include path) exceptions. */
    std::set<std::pair<std::string, std::string>> allow;

    /** Layer of @p path, or -1 when no prefix matches (unlayered
     *  files are exempt from the order check but still cycle-checked). */
    int layerOf(const std::string &path) const;
};

/** The coterie layer map (src/support lowest … bench/tools/tests top). */
LayerConfig defaultLayerConfig();

/** Parse an allowlist file: `includer include` pairs, '#' comments. */
void parseAllowlist(const std::string &text, LayerConfig &cfg);

/**
 * Resolve include @p spelled from @p includer against the model's
 * file set (tries the spelling verbatim, under src/, under
 * tools/lint/, and relative to the includer's directory). Returns the
 * repo-relative path or "" for external/system includes.
 */
std::string resolveInclude(const RepoModel &repo,
                           const std::string &includer,
                           const std::string &spelled);

/** Rules: `layering` (order violation), `include-cycle`. */
std::vector<Finding> analyzeLayering(const RepoModel &repo,
                                     const LayerConfig &cfg);

/** Rule: `unused-include` (only applied to files under src/). */
std::vector<Finding> analyzeUnusedIncludes(const RepoModel &repo);

/** Rules: `lock-order-cycle`, `lock-order-ambiguity`. */
std::vector<Finding> analyzeLockOrder(const RepoModel &repo);

/** All three passes, suppressions applied. */
std::vector<Finding> analyzeRepo(const RepoModel &repo,
                                 const LayerConfig &cfg,
                                 std::size_t *suppressed = nullptr);

/** Drop findings whose line (or the line above) carries
 *  `lint:allow(rule)` in the file's raw content. */
std::vector<Finding> applySuppressions(const RepoModel &repo,
                                       std::vector<Finding> findings,
                                       std::size_t *suppressed = nullptr);

/** The project include DAG as Graphviz (clustered by layer). */
std::string includeGraphDot(const RepoModel &repo, const LayerConfig &cfg);

/** The lock-order DAG as Graphviz (edge labels cite witnesses). */
std::string lockOrderDot(const RepoModel &repo);

} // namespace coterie::lint
