/**
 * @file
 * coterie-lint — project-invariant static analysis.
 *
 * Coterie's correctness story rests on invariants a compiler cannot
 * check: bit-identical Far-BE frames require that nothing in `src/`
 * reads wall clocks, ambient randomness, or the environment outside
 * `support/`; the shared-thread-pool contract requires that all
 * parallelism flows through `support/parallel`; and the thread-safety
 * annotation discipline requires every mutex member to guard something.
 * This library is a file-scoped token/regex rule engine over those
 * invariants; the `coterie-lint` binary (main.cc) walks the tree and is
 * registered as the `lint` CTest test, so tier-1 fails on a violation.
 *
 * Analyses run on a *stripped* view of each file — comments, string,
 * and character literals blanked out, line structure preserved — so
 * prose like "service time (lookup...)" never trips the `time(` rule
 * and fixture snippets embedded in test string literals stay inert.
 *
 * Suppression: `// lint:allow(rule-a, rule-b)` on the offending line or
 * the line directly above silences those rules for that line.
 */

#pragma once

#include <cstddef>
#include <functional>
#include <string>
#include <vector>

namespace coterie::lint {

/** One rule violation at a file:line. */
struct Finding
{
    std::string file; ///< repo-relative path, '/'-separated
    int line = 0;     ///< 1-based
    std::string rule;
    std::string message;
};

/** A source file prepared for analysis. */
struct SourceFile
{
    std::string path; ///< repo-relative, '/'-separated
    std::string raw;
    std::string stripped; ///< comments + string/char literals blanked
    std::vector<std::string> rawLines;
    std::vector<std::string> strippedLines;
    bool isHeader = false;

    static SourceFile parse(std::string path, std::string content);

    /** True if `path` is under the '/'-terminated prefix @p dir. */
    bool under(const std::string &dir) const;
    /** True if `path` equals any of the given paths. */
    bool isAnyOf(std::initializer_list<const char *> paths) const;
};

/** One invariant check. `check` appends findings (pre-suppression). */
struct Rule
{
    std::string name;
    std::string description;
    std::function<void(const SourceFile &, std::vector<Finding> &)> check;
};

/** The registered rule set, in diagnostic order. */
const std::vector<Rule> &rules();

/**
 * Run every rule over one in-memory source and apply `lint:allow`
 * suppressions. @p suppressed (optional) receives the number of
 * findings dropped by suppression comments.
 */
std::vector<Finding> checkSource(const std::string &path,
                                 const std::string &content,
                                 std::size_t *suppressed = nullptr);

/**
 * Blank comments and string/character literals (raw strings included)
 * with spaces, preserving newlines so line/column arithmetic holds.
 */
std::string stripCommentsAndStrings(const std::string &src);

/** True if @p rawLine carries `lint:allow(...)` naming @p rule. */
bool lineAllowsRule(const std::string &rawLine, const std::string &rule);

} // namespace coterie::lint
