/**
 * @file
 * C++ tokenizer for coterie-analyze.
 *
 * The PR 2 lint engine matched regexes against a comment-stripped view
 * of each line; the cross-translation-unit analyses (include-graph
 * layering, lock-order, determinism taint) need real structure, so
 * this lexer turns a source file into a token stream plus a directive
 * list. It is a *lexer*, not a parser: no preprocessing, no template
 * instantiation — just enough fidelity for the per-file model
 * (model.hh) to track scopes, declarations, and call/lock sites.
 *
 * Fidelity notes:
 *  - Backslash-newline line continuations are spliced (one logical
 *    token may span physical lines); every token carries the physical
 *    line it *starts* on, so diagnostics stay accurate.
 *  - Comments are skipped (C++ block comments do not nest; a stray
 *    inner "/ *" is part of the outer comment, per the standard).
 *  - String/char literals become single tokens (raw strings with
 *    arbitrary delimiters included), so fixture code embedded in test
 *    string literals never reaches the analyses.
 *  - `#include` lines become Directive records, not code tokens;
 *    other directives (`#define`, `#if`, ...) are recorded *and*
 *    their bodies are tokenized, because macro bodies both define and
 *    use identifiers the model must see.
 *  - Punctuation is single-character except `::` and `->`, which the
 *    scope/name resolution in model.cc needs as units.
 */

#pragma once

#include <cstddef>
#include <string>
#include <vector>

namespace coterie::lint {

/** Lexical class of a token. */
enum class Tok {
    Ident,  ///< identifier or keyword
    Number, ///< pp-number (integer/float, any base, digit separators)
    String, ///< string literal (raw or cooked); text is the *content*
    Char,   ///< character literal; text is the content
    Punct,  ///< punctuation; single char except "::" and "->"
};

/** One lexed token. */
struct Token
{
    Tok kind = Tok::Punct;
    std::string text;
    int line = 0; ///< 1-based physical line the token starts on
};

/** One preprocessor directive (line spliced before parsing). */
struct Directive
{
    std::string name; ///< "include", "define", "if", ...
    std::string arg;  ///< first argument: include target (quotes/<>
                      ///< stripped), macro name, ...
    bool systemInclude = false; ///< include used <...> form
    int line = 0;
};

/** A tokenized translation unit. */
struct TokenStream
{
    std::vector<Token> tokens;
    std::vector<Directive> directives;
};

/** Lex @p src. Never fails: unrecognized bytes become Punct tokens. */
TokenStream tokenize(const std::string &src);

} // namespace coterie::lint
