/**
 * @file
 * Per-file token-level model for coterie-analyze.
 *
 * `buildFileModel` reduces one tokenized source file to the facts the
 * cross-translation-unit analyses (analyze.hh) consume:
 *
 *  - project/system includes (with line numbers, for layering and the
 *    unused-include pass);
 *  - the identifiers a header *exports* at namespace scope (type,
 *    function, variable, alias, enumerator, and macro names) and the
 *    identifiers the file *uses* anywhere — the unused-include pass
 *    intersects these across the include graph;
 *  - mutex declarations (`support::Mutex` / `std::mutex` members and
 *    locals) qualified by their enclosing class scope;
 *  - per-function lock behaviour: `COTERIE_REQUIRES` contracts (from
 *    declarations and definitions), RAII acquisition sites
 *    (`MutexLock` / `lock_guard` / `unique_lock` / `scoped_lock`)
 *    with the set of locks held at that point, and unqualified /
 *    `this->` / `Class::` calls made while holding locks (for
 *    one-level same-class propagation in the lock-order analysis).
 *
 * This is a heuristic single-pass scope tracker, not a parser: it
 * understands namespaces, class/struct/union and enum bodies
 * (including `struct Outer::Nested` definitions and attribute macros
 * between the class-key and the name), function definitions at
 * namespace and class scope, template headers, and brace
 * initializers. It deliberately over-collects exports (extra names
 * only make the unused-include pass more conservative) and
 * under-collects calls (only forms whose target can be named without
 * type information).
 */

#pragma once

#include "token.hh"

#include <set>
#include <string>
#include <vector>

namespace coterie::lint {

/** One #include in a file. */
struct IncludeRef
{
    std::string spelled; ///< as written between the delimiters
    bool system = false; ///< <...> form
    int line = 0;
};

/** One mutex object declaration. */
struct MutexDecl
{
    std::string scope; ///< enclosing class chain ("ThreadPool::Job"),
                       ///< empty at namespace scope
    std::string name;  ///< member/variable name
    bool local = false; ///< declared inside a function body
    int line = 0;
};

/** A COTERIE_REQUIRES contract seen on a *declaration* (no body). */
struct DeclRequires
{
    std::string klass; ///< enclosing class chain
    std::string name;  ///< function name
    std::vector<std::string> mutexes; ///< reduced to final identifier
};

/** One function definition's lock-relevant behaviour. */
struct FuncRecord
{
    std::string klass; ///< declared class ("FrameCache"), "" if free
    std::string name;

    /** COTERIE_REQUIRES(...) on the definition itself. */
    std::vector<std::string> requiresExprs;

    struct Acquire
    {
        std::string expr; ///< lock expression reduced to its final
                          ///< identifier ("mutex_", "errorMutex")
        int line = 0;
    };
    /** Every RAII acquisition in the body, in order. */
    std::vector<Acquire> acquires;

    /** Held -> acquired pairs observed inside the body. */
    struct BodyEdge
    {
        std::string fromExpr;
        std::string toExpr;
        int line = 0;          ///< line of the inner acquisition
        bool fromRequires = false;
    };
    std::vector<BodyEdge> edges;

    /** A call made with at least one lock held (or under REQUIRES). */
    struct Call
    {
        std::string klass; ///< explicit "Class::" qualifier, else ""
        std::string name;
        std::vector<std::string> heldExprs; ///< RAII locks active
        int line = 0;
    };
    std::vector<Call> calls;
};

/** Everything the cross-file analyses need from one file. */
struct FileModel
{
    std::string path;
    bool isHeader = false;

    std::vector<IncludeRef> includes;
    std::set<std::string> exports; ///< namespace-scope decls + macros
    std::set<std::string> uses;    ///< every identifier in the file

    std::vector<MutexDecl> mutexDecls;
    std::vector<DeclRequires> declRequires;
    std::vector<FuncRecord> funcs;
};

/** Build the model for @p path from its token stream. */
FileModel buildFileModel(const std::string &path, const TokenStream &ts);

} // namespace coterie::lint
