#include "lint.hh"

#include <algorithm>
#include <cctype>
#include <regex>

namespace coterie::lint {

namespace {

bool
isWordChar(char c)
{
    return std::isalnum(static_cast<unsigned char>(c)) != 0 || c == '_';
}

/** True when the identifier ending right before @p i is a raw-string
 *  prefix (R, u8R, uR, UR, LR). */
bool
isRawStringPrefix(const std::string &s, std::size_t i)
{
    if (i == 0 || s[i - 1] != 'R')
        return false;
    // The char before the R must not extend an identifier (so `FooR"`
    // is not a raw string) unless it is one of the encoding prefixes.
    if (i >= 2) {
        const char p = s[i - 2];
        if (isWordChar(p)) {
            const bool encoding =
                p == 'u' || p == 'U' || p == 'L' ||
                (p == '8' && i >= 3 && s[i - 3] == 'u');
            if (!encoding)
                return false;
            if (i >= 3 && isWordChar(s[i - 3]) &&
                !(p == '8' && s[i - 3] == 'u'))
                return false;
        }
    }
    return true;
}

} // namespace

std::string
stripCommentsAndStrings(const std::string &src)
{
    enum class State { Code, LineComment, BlockComment, Str, Chr, Raw };
    std::string out = src;
    State state = State::Code;
    std::string rawDelim; // raw-string closer: )delim
    std::size_t i = 0;
    const std::size_t n = src.size();

    auto blank = [&](std::size_t at) {
        if (out[at] != '\n')
            out[at] = ' ';
    };

    while (i < n) {
        const char c = src[i];
        switch (state) {
          case State::Code:
            if (c == '/' && i + 1 < n && src[i + 1] == '/') {
                state = State::LineComment;
                blank(i);
            } else if (c == '/' && i + 1 < n && src[i + 1] == '*') {
                state = State::BlockComment;
                blank(i);
            } else if (c == '"') {
                if (isRawStringPrefix(src, i)) {
                    rawDelim = ")";
                    std::size_t j = i + 1;
                    while (j < n && src[j] != '(')
                        rawDelim += src[j++];
                    rawDelim += '"';
                    state = State::Raw;
                } else {
                    state = State::Str;
                }
            } else if (c == '\'') {
                // `'` between two digits is a numeric separator
                // (1'000), not a character literal.
                const bool separator =
                    i > 0 && i + 1 < n &&
                    std::isdigit(static_cast<unsigned char>(src[i - 1])) &&
                    std::isdigit(static_cast<unsigned char>(src[i + 1]));
                if (!separator)
                    state = State::Chr;
            }
            break;
          case State::LineComment:
            if (c == '\n')
                state = State::Code;
            else
                blank(i);
            break;
          case State::BlockComment:
            if (c == '*' && i + 1 < n && src[i + 1] == '/') {
                blank(i);
                blank(i + 1);
                ++i;
                state = State::Code;
            } else {
                blank(i);
            }
            break;
          case State::Str:
            if (c == '\\' && i + 1 < n) {
                blank(i);
                blank(i + 1);
                ++i;
            } else if (c == '"' || c == '\n') {
                state = State::Code;
            } else {
                blank(i);
            }
            break;
          case State::Chr:
            if (c == '\\' && i + 1 < n) {
                blank(i);
                blank(i + 1);
                ++i;
            } else if (c == '\'' || c == '\n') {
                state = State::Code;
            } else {
                blank(i);
            }
            break;
          case State::Raw:
            if (c == ')' && src.compare(i, rawDelim.size(), rawDelim) == 0) {
                i += rawDelim.size() - 1; // land on the closing quote
                state = State::Code;
            } else {
                blank(i);
            }
            break;
        }
        ++i;
    }
    return out;
}

bool
lineAllowsRule(const std::string &rawLine, const std::string &rule)
{
    static const std::regex kAllow(R"(lint\s*:\s*allow\s*\(([^)]*)\))");
    auto begin = std::sregex_iterator(rawLine.begin(), rawLine.end(),
                                      kAllow);
    for (auto it = begin; it != std::sregex_iterator(); ++it) {
        std::string list = (*it)[1].str();
        std::string token;
        for (std::size_t i = 0; i <= list.size(); ++i) {
            const char c = i < list.size() ? list[i] : ',';
            if (c == ',' || c == ' ' || c == '\t') {
                if (token == rule || token == "all")
                    return true;
                token.clear();
            } else {
                token += c;
            }
        }
    }
    return false;
}

SourceFile
SourceFile::parse(std::string path, std::string content)
{
    SourceFile f;
    std::replace(path.begin(), path.end(), '\\', '/');
    f.path = std::move(path);
    f.raw = std::move(content);
    f.stripped = stripCommentsAndStrings(f.raw);
    auto split = [](const std::string &s) {
        std::vector<std::string> lines;
        std::size_t start = 0;
        while (start <= s.size()) {
            const std::size_t nl = s.find('\n', start);
            if (nl == std::string::npos) {
                lines.push_back(s.substr(start));
                break;
            }
            lines.push_back(s.substr(start, nl - start));
            start = nl + 1;
        }
        return lines;
    };
    f.rawLines = split(f.raw);
    f.strippedLines = split(f.stripped);
    const auto dot = f.path.rfind('.');
    const std::string ext =
        dot == std::string::npos ? "" : f.path.substr(dot);
    f.isHeader = ext == ".hh" || ext == ".hpp" || ext == ".h";
    return f;
}

bool
SourceFile::under(const std::string &dir) const
{
    return path.compare(0, dir.size(), dir) == 0;
}

bool
SourceFile::isAnyOf(std::initializer_list<const char *> paths) const
{
    for (const char *p : paths)
        if (path == p)
            return true;
    return false;
}

namespace {

/** Helper: report every match of @p re in the stripped lines. */
void
forEachMatch(const SourceFile &f, const std::regex &re,
             const std::function<void(int line, const std::string &match)>
                 &emit)
{
    for (std::size_t li = 0; li < f.strippedLines.size(); ++li) {
        const std::string &line = f.strippedLines[li];
        auto begin = std::sregex_iterator(line.begin(), line.end(), re);
        for (auto it = begin; it != std::sregex_iterator(); ++it)
            emit(static_cast<int>(li) + 1, it->str());
    }
}

void
checkWallclockRng(const SourceFile &f, std::vector<Finding> &out)
{
    if (!f.under("src/") || f.under("src/support/"))
        return;
    static const std::regex kBad(
        R"(std\s*::\s*random_device|\bs?rand\s*\(|\btime\s*\(|\bclock\s*\()"
        R"(|\bsystem_clock\b|\bgetenv\b|\bgettimeofday\b)");
    forEachMatch(f, kBad, [&](int line, const std::string &m) {
        out.push_back({f.path, line, "no-wallclock-rng",
                       "'" + m +
                           "' breaks bit-identical Far-BE reuse; use "
                           "support/rng (seeded) or move it under "
                           "src/support/"});
    });
}

void
checkRawThread(const SourceFile &f, std::vector<Finding> &out)
{
    if (f.isAnyOf({"src/support/parallel.hh", "src/support/parallel.cc"}))
        return;
    static const std::regex kBad(
        R"(std\s*::\s*thread\b(?!\s*::)|std\s*::\s*jthread\b)"
        R"(|std\s*::\s*async\b|\.detach\s*\(|\bpthread_create\b)");
    forEachMatch(f, kBad, [&](int line, const std::string &m) {
        out.push_back({f.path, line, "no-raw-thread",
                       "'" + m +
                           "' bypasses the shared pool; all parallelism "
                           "must go through support/parallel "
                           "(deterministic chunking, no thread leaks)"});
    });
}

void
checkUsingNamespaceHeader(const SourceFile &f, std::vector<Finding> &out)
{
    if (!f.isHeader)
        return;
    static const std::regex kBad(R"(^\s*using\s+namespace\b)");
    forEachMatch(f, kBad, [&](int line, const std::string &) {
        out.push_back({f.path, line, "no-using-namespace-header",
                       "'using namespace' in a header leaks into every "
                       "includer; qualify or alias instead"});
    });
}

void
checkPragmaOnce(const SourceFile &f, std::vector<Finding> &out)
{
    if (!f.isHeader)
        return;
    static const std::regex kPragma(R"(^\s*#\s*pragma\s+once\b)");
    for (const std::string &line : f.strippedLines)
        if (std::regex_search(line, kPragma))
            return;
    out.push_back({f.path, 1, "pragma-once",
                   "header is missing '#pragma once' (project headers "
                   "use it instead of include guards)"});
}

void
checkConsoleIo(const SourceFile &f, std::vector<Finding> &out)
{
    if (!f.under("src/"))
        return;
    if (f.isAnyOf({"src/support/logging.hh", "src/support/logging.cc"}))
        return;
    static const std::regex kBad(
        R"(std\s*::\s*(cout|cerr|clog)\b|\b(printf|puts|putchar)\s*\()"
        R"(|\bfprintf\s*\(\s*(stdout|stderr)\b)");
    forEachMatch(f, kBad, [&](int line, const std::string &m) {
        out.push_back({f.path, line, "no-direct-console-io",
                       "'" + m +
                           "' writes to the console directly; use the "
                           "support/logging macros (COTERIE_INFORM/"
                           "WARN/...) so verbosity stays controllable"});
    });
}

void
checkAmbientClock(const SourceFile &f, std::vector<Finding> &out)
{
    if (!f.under("src/"))
        return;
    // The one sanctioned wall-clock access point (see obs/clock.hh).
    if (f.isAnyOf({"src/obs/clock.hh", "src/obs/clock.cc"}))
        return;
    static const std::regex kBad(
        R"(\bchrono\s*::\s*\w+_clock\b|\bsteady_clock\b)"
        R"(|\bhigh_resolution_clock\b|\bsystem_clock\b|\btime\s*\()");
    forEachMatch(f, kBad, [&](int line, const std::string &m) {
        out.push_back({f.path, line, "ambient-clock",
                       "'" + m +
                           "' reads ambient time outside obs/clock; "
                           "wall-clock access in src/ is confined to "
                           "src/obs/clock.{hh,cc} (telemetry is "
                           "observe-only, simulation uses sim time)"});
    });
}

void
checkEpochGuardedSchedule(const SourceFile &f, std::vector<Finding> &out)
{
    if (!f.under("src/"))
        return;
    const std::string &s = f.stripped;
    static const std::regex kCall(R"(\bschedule(?:In|At)\s*\()");
    static const std::regex kThis(R"(\bthis\b)");
    static const std::regex kGuard(
        R"(==|!=|\.\s*find\s*\(|\.\s*count\s*\(|->\s*find\s*\(|->\s*count\s*\()");
    for (auto it = std::sregex_iterator(s.begin(), s.end(), kCall);
         it != std::sregex_iterator(); ++it) {
        const auto callPos = static_cast<std::size_t>(it->position());
        // The lambda's capture list must open inside this call's
        // argument list; a ';' first means we matched a declaration.
        std::size_t open = std::string::npos;
        for (std::size_t i = callPos; i < s.size(); ++i) {
            if (s[i] == '[') {
                open = i;
                break;
            }
            if (s[i] == ';')
                break;
        }
        if (open == std::string::npos)
            continue;
        const std::size_t close = s.find(']', open);
        if (close == std::string::npos)
            continue;
        // Only explicit `this` captures are in scope: the scheduled
        // callback outlives the current turn, so the object may be
        // torn down or repointed before it fires.
        const std::string captures =
            s.substr(open + 1, close - open - 1);
        if (!std::regex_search(captures, kThis))
            continue;
        // Extract the balanced-brace lambda body and look for the
        // revalidation the epoch-guard pattern requires: an epoch or
        // generation comparison, or a membership lookup that makes a
        // stale wake-up a no-op (channel.cc is the reference).
        const std::size_t bodyOpen = s.find('{', close);
        if (bodyOpen == std::string::npos)
            continue;
        int depth = 0;
        std::size_t bodyEnd = bodyOpen;
        for (; bodyEnd < s.size(); ++bodyEnd) {
            if (s[bodyEnd] == '{')
                ++depth;
            else if (s[bodyEnd] == '}' && --depth == 0)
                break;
        }
        const std::string body =
            s.substr(bodyOpen, bodyEnd - bodyOpen + 1);
        if (std::regex_search(body, kGuard))
            continue;
        const int line =
            1 + static_cast<int>(std::count(
                    s.begin(),
                    s.begin() + static_cast<std::ptrdiff_t>(callPos),
                    '\n'));
        out.push_back(
            {f.path, line, "epoch-guarded-schedule",
             "scheduleIn/scheduleAt lambda captures `this` without "
             "revalidating on wake; compare an epoch/generation or "
             "re-look-up membership before touching members (the "
             "epoch-guard pattern in net/channel.cc), or justify with "
             "a lint:allow if the callee revalidates"});
    }
}

void
checkMutexGuardedBy(const SourceFile &f, std::vector<Finding> &out)
{
    if (!f.under("src/"))
        return;
    static const std::regex kDecl(
        R"(\b(?:std\s*::\s*(?:recursive_|shared_|timed_|recursive_timed_)?mutex|(?:support\s*::\s*)?Mutex)\s+(\w+)\s*;)");
    const bool hasAnnotations =
        f.stripped.find("GUARDED_BY") != std::string::npos;
    if (hasAnnotations)
        return;
    for (std::size_t li = 0; li < f.strippedLines.size(); ++li) {
        const std::string &line = f.strippedLines[li];
        std::smatch m;
        if (std::regex_search(line, m, kDecl)) {
            out.push_back(
                {f.path, static_cast<int>(li) + 1, "mutex-guarded-by",
                 "mutex member '" + m[1].str() +
                     "' with no GUARDED_BY annotation in this file; "
                     "annotate the data it protects "
                     "(support/thread_annotations.hh)"});
        }
    }
}

} // namespace

const std::vector<Rule> &
rules()
{
    static const std::vector<Rule> kRules = {
        {"no-wallclock-rng",
         "src/ outside support/ must not read wall clocks, ambient "
         "randomness, or the environment (std::random_device, rand, "
         "time, clock, system_clock, getenv)",
         checkWallclockRng},
        {"no-raw-thread",
         "no raw std::thread/std::jthread/std::async/.detach()/"
         "pthread_create outside support/parallel",
         checkRawThread},
        {"no-using-namespace-header",
         "headers must not contain 'using namespace'", //
         checkUsingNamespaceHeader},
        {"pragma-once",
         "every header starts with #pragma once", //
         checkPragmaOnce},
        {"no-direct-console-io",
         "src/ must log through support/logging, never printf/cout "
         "directly",
         checkConsoleIo},
        {"mutex-guarded-by",
         "every mutex member in src/ lives in a file that annotates "
         "the data it guards with GUARDED_BY",
         checkMutexGuardedBy},
        {"ambient-clock",
         "src/ must not read std::chrono clocks or time() outside "
         "src/obs/clock.{hh,cc} — the single wall-clock access point",
         checkAmbientClock},
        {"epoch-guarded-schedule",
         "a scheduleIn/scheduleAt lambda capturing `this` must "
         "revalidate on wake (epoch/generation compare or membership "
         "lookup) so stale events are no-ops",
         checkEpochGuardedSchedule},
    };
    return kRules;
}

std::vector<Finding>
checkSource(const std::string &path, const std::string &content,
            std::size_t *suppressed)
{
    const SourceFile f = SourceFile::parse(path, content);
    std::vector<Finding> all;
    for (const Rule &rule : rules())
        rule.check(f, all);

    std::vector<Finding> kept;
    std::size_t dropped = 0;
    for (Finding &finding : all) {
        const std::size_t li = static_cast<std::size_t>(finding.line) - 1;
        const bool allowed =
            (li < f.rawLines.size() &&
             lineAllowsRule(f.rawLines[li], finding.rule)) ||
            (li >= 1 && li - 1 < f.rawLines.size() &&
             lineAllowsRule(f.rawLines[li - 1], finding.rule));
        if (allowed)
            ++dropped;
        else
            kept.push_back(std::move(finding));
    }
    if (suppressed)
        *suppressed = dropped;

    std::stable_sort(kept.begin(), kept.end(),
                     [](const Finding &a, const Finding &b) {
                         return a.line < b.line;
                     });
    return kept;
}

} // namespace coterie::lint
