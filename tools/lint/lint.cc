#include "lint.hh"
#include "token.hh"

#include <algorithm>
#include <cctype>
#include <regex>
#include <set>

namespace coterie::lint {

namespace {

bool
isWordChar(char c)
{
    return std::isalnum(static_cast<unsigned char>(c)) != 0 || c == '_';
}

/** True when the identifier ending right before @p i is a raw-string
 *  prefix (R, u8R, uR, UR, LR). */
bool
isRawStringPrefix(const std::string &s, std::size_t i)
{
    if (i == 0 || s[i - 1] != 'R')
        return false;
    // The char before the R must not extend an identifier (so `FooR"`
    // is not a raw string) unless it is one of the encoding prefixes.
    if (i >= 2) {
        const char p = s[i - 2];
        if (isWordChar(p)) {
            const bool encoding =
                p == 'u' || p == 'U' || p == 'L' ||
                (p == '8' && i >= 3 && s[i - 3] == 'u');
            if (!encoding)
                return false;
            if (i >= 3 && isWordChar(s[i - 3]) &&
                !(p == '8' && s[i - 3] == 'u'))
                return false;
        }
    }
    return true;
}

} // namespace

std::string
stripCommentsAndStrings(const std::string &src)
{
    enum class State { Code, LineComment, BlockComment, Str, Chr, Raw };
    std::string out = src;
    State state = State::Code;
    std::string rawDelim; // raw-string closer: )delim
    std::size_t i = 0;
    const std::size_t n = src.size();

    auto blank = [&](std::size_t at) {
        if (out[at] != '\n')
            out[at] = ' ';
    };

    while (i < n) {
        const char c = src[i];
        switch (state) {
          case State::Code:
            if (c == '/' && i + 1 < n && src[i + 1] == '/') {
                state = State::LineComment;
                blank(i);
            } else if (c == '/' && i + 1 < n && src[i + 1] == '*') {
                state = State::BlockComment;
                blank(i);
            } else if (c == '"') {
                if (isRawStringPrefix(src, i)) {
                    rawDelim = ")";
                    std::size_t j = i + 1;
                    while (j < n && src[j] != '(')
                        rawDelim += src[j++];
                    rawDelim += '"';
                    state = State::Raw;
                } else {
                    state = State::Str;
                }
            } else if (c == '\'') {
                // `'` between two digits is a numeric separator
                // (1'000), not a character literal.
                const bool separator =
                    i > 0 && i + 1 < n &&
                    std::isdigit(static_cast<unsigned char>(src[i - 1])) &&
                    std::isdigit(static_cast<unsigned char>(src[i + 1]));
                if (!separator)
                    state = State::Chr;
            }
            break;
          case State::LineComment:
            if (c == '\n')
                state = State::Code;
            else
                blank(i);
            break;
          case State::BlockComment:
            if (c == '*' && i + 1 < n && src[i + 1] == '/') {
                blank(i);
                blank(i + 1);
                ++i;
                state = State::Code;
            } else {
                blank(i);
            }
            break;
          case State::Str:
            if (c == '\\' && i + 1 < n) {
                blank(i);
                blank(i + 1);
                ++i;
            } else if (c == '"' || c == '\n') {
                state = State::Code;
            } else {
                blank(i);
            }
            break;
          case State::Chr:
            if (c == '\\' && i + 1 < n) {
                blank(i);
                blank(i + 1);
                ++i;
            } else if (c == '\'' || c == '\n') {
                state = State::Code;
            } else {
                blank(i);
            }
            break;
          case State::Raw:
            if (c == ')' && src.compare(i, rawDelim.size(), rawDelim) == 0) {
                i += rawDelim.size() - 1; // land on the closing quote
                state = State::Code;
            } else {
                blank(i);
            }
            break;
        }
        ++i;
    }
    return out;
}

bool
lineAllowsRule(const std::string &rawLine, const std::string &rule)
{
    static const std::regex kAllow(R"(lint\s*:\s*allow\s*\(([^)]*)\))");
    auto begin = std::sregex_iterator(rawLine.begin(), rawLine.end(),
                                      kAllow);
    for (auto it = begin; it != std::sregex_iterator(); ++it) {
        std::string list = (*it)[1].str();
        std::string token;
        for (std::size_t i = 0; i <= list.size(); ++i) {
            const char c = i < list.size() ? list[i] : ',';
            if (c == ',' || c == ' ' || c == '\t') {
                if (token == rule || token == "all")
                    return true;
                token.clear();
            } else {
                token += c;
            }
        }
    }
    return false;
}

SourceFile
SourceFile::parse(std::string path, std::string content)
{
    SourceFile f;
    std::replace(path.begin(), path.end(), '\\', '/');
    f.path = std::move(path);
    f.raw = std::move(content);
    f.stripped = stripCommentsAndStrings(f.raw);
    auto split = [](const std::string &s) {
        std::vector<std::string> lines;
        std::size_t start = 0;
        while (start <= s.size()) {
            const std::size_t nl = s.find('\n', start);
            if (nl == std::string::npos) {
                lines.push_back(s.substr(start));
                break;
            }
            lines.push_back(s.substr(start, nl - start));
            start = nl + 1;
        }
        return lines;
    };
    f.rawLines = split(f.raw);
    f.strippedLines = split(f.stripped);
    const auto dot = f.path.rfind('.');
    const std::string ext =
        dot == std::string::npos ? "" : f.path.substr(dot);
    f.isHeader = ext == ".hh" || ext == ".hpp" || ext == ".h";
    return f;
}

bool
SourceFile::under(const std::string &dir) const
{
    return path.compare(0, dir.size(), dir) == 0;
}

bool
SourceFile::isAnyOf(std::initializer_list<const char *> paths) const
{
    for (const char *p : paths)
        if (path == p)
            return true;
    return false;
}

namespace {

/** Helper: report every match of @p re in the stripped lines. */
void
forEachMatch(const SourceFile &f, const std::regex &re,
             const std::function<void(int line, const std::string &match)>
                 &emit)
{
    for (std::size_t li = 0; li < f.strippedLines.size(); ++li) {
        const std::string &line = f.strippedLines[li];
        auto begin = std::sregex_iterator(line.begin(), line.end(), re);
        for (auto it = begin; it != std::sregex_iterator(); ++it)
            emit(static_cast<int>(li) + 1, it->str());
    }
}

void
checkWallclockRng(const SourceFile &f, std::vector<Finding> &out)
{
    if (!f.under("src/") || f.under("src/support/"))
        return;
    static const std::regex kBad(
        R"(std\s*::\s*random_device|\bs?rand\s*\(|\btime\s*\(|\bclock\s*\()"
        R"(|\bsystem_clock\b|\bgetenv\b|\bgettimeofday\b)");
    forEachMatch(f, kBad, [&](int line, const std::string &m) {
        out.push_back({f.path, line, "no-wallclock-rng",
                       "'" + m +
                           "' breaks bit-identical Far-BE reuse; use "
                           "support/rng (seeded) or move it under "
                           "src/support/"});
    });
}

void
checkRawThread(const SourceFile &f, std::vector<Finding> &out)
{
    if (f.isAnyOf({"src/support/parallel.hh", "src/support/parallel.cc"}))
        return;
    static const std::regex kBad(
        R"(std\s*::\s*thread\b(?!\s*::)|std\s*::\s*jthread\b)"
        R"(|std\s*::\s*async\b|\.detach\s*\(|\bpthread_create\b)");
    forEachMatch(f, kBad, [&](int line, const std::string &m) {
        out.push_back({f.path, line, "no-raw-thread",
                       "'" + m +
                           "' bypasses the shared pool; all parallelism "
                           "must go through support/parallel "
                           "(deterministic chunking, no thread leaks)"});
    });
}

void
checkUsingNamespaceHeader(const SourceFile &f, std::vector<Finding> &out)
{
    if (!f.isHeader)
        return;
    static const std::regex kBad(R"(^\s*using\s+namespace\b)");
    forEachMatch(f, kBad, [&](int line, const std::string &) {
        out.push_back({f.path, line, "no-using-namespace-header",
                       "'using namespace' in a header leaks into every "
                       "includer; qualify or alias instead"});
    });
}

void
checkPragmaOnce(const SourceFile &f, std::vector<Finding> &out)
{
    if (!f.isHeader)
        return;
    static const std::regex kPragma(R"(^\s*#\s*pragma\s+once\b)");
    for (const std::string &line : f.strippedLines)
        if (std::regex_search(line, kPragma))
            return;
    out.push_back({f.path, 1, "pragma-once",
                   "header is missing '#pragma once' (project headers "
                   "use it instead of include guards)"});
}

void
checkConsoleIo(const SourceFile &f, std::vector<Finding> &out)
{
    if (!f.under("src/"))
        return;
    if (f.isAnyOf({"src/support/logging.hh", "src/support/logging.cc"}))
        return;
    static const std::regex kBad(
        R"(std\s*::\s*(cout|cerr|clog)\b|\b(printf|puts|putchar)\s*\()"
        R"(|\bfprintf\s*\(\s*(stdout|stderr)\b)");
    forEachMatch(f, kBad, [&](int line, const std::string &m) {
        out.push_back({f.path, line, "no-direct-console-io",
                       "'" + m +
                           "' writes to the console directly; use the "
                           "support/logging macros (COTERIE_INFORM/"
                           "WARN/...) so verbosity stays controllable"});
    });
}

void
checkAmbientClock(const SourceFile &f, std::vector<Finding> &out)
{
    if (!f.under("src/"))
        return;
    // The one sanctioned wall-clock access point (see obs/clock.hh).
    if (f.isAnyOf({"src/obs/clock.hh", "src/obs/clock.cc"}))
        return;
    static const std::regex kBad(
        R"(\bchrono\s*::\s*\w+_clock\b|\bsteady_clock\b)"
        R"(|\bhigh_resolution_clock\b|\bsystem_clock\b|\btime\s*\()");
    forEachMatch(f, kBad, [&](int line, const std::string &m) {
        out.push_back({f.path, line, "ambient-clock",
                       "'" + m +
                           "' reads ambient time outside obs/clock; "
                           "wall-clock access in src/ is confined to "
                           "src/obs/clock.{hh,cc} (telemetry is "
                           "observe-only, simulation uses sim time)"});
    });
}

void
checkEpochGuardedSchedule(const SourceFile &f, std::vector<Finding> &out)
{
    if (!f.under("src/"))
        return;
    const std::string &s = f.stripped;
    static const std::regex kCall(R"(\bschedule(?:In|At)\s*\()");
    static const std::regex kThis(R"(\bthis\b)");
    static const std::regex kGuard(
        R"(==|!=|\.\s*find\s*\(|\.\s*count\s*\(|->\s*find\s*\(|->\s*count\s*\()");
    for (auto it = std::sregex_iterator(s.begin(), s.end(), kCall);
         it != std::sregex_iterator(); ++it) {
        const auto callPos = static_cast<std::size_t>(it->position());
        // The lambda's capture list must open inside this call's
        // argument list; a ';' first means we matched a declaration.
        std::size_t open = std::string::npos;
        for (std::size_t i = callPos; i < s.size(); ++i) {
            if (s[i] == '[') {
                open = i;
                break;
            }
            if (s[i] == ';')
                break;
        }
        if (open == std::string::npos)
            continue;
        const std::size_t close = s.find(']', open);
        if (close == std::string::npos)
            continue;
        // Only explicit `this` captures are in scope: the scheduled
        // callback outlives the current turn, so the object may be
        // torn down or repointed before it fires.
        const std::string captures =
            s.substr(open + 1, close - open - 1);
        if (!std::regex_search(captures, kThis))
            continue;
        // Extract the balanced-brace lambda body and look for the
        // revalidation the epoch-guard pattern requires: an epoch or
        // generation comparison, or a membership lookup that makes a
        // stale wake-up a no-op (channel.cc is the reference).
        const std::size_t bodyOpen = s.find('{', close);
        if (bodyOpen == std::string::npos)
            continue;
        int depth = 0;
        std::size_t bodyEnd = bodyOpen;
        for (; bodyEnd < s.size(); ++bodyEnd) {
            if (s[bodyEnd] == '{')
                ++depth;
            else if (s[bodyEnd] == '}' && --depth == 0)
                break;
        }
        const std::string body =
            s.substr(bodyOpen, bodyEnd - bodyOpen + 1);
        if (std::regex_search(body, kGuard))
            continue;
        const int line =
            1 + static_cast<int>(std::count(
                    s.begin(),
                    s.begin() + static_cast<std::ptrdiff_t>(callPos),
                    '\n'));
        out.push_back(
            {f.path, line, "epoch-guarded-schedule",
             "scheduleIn/scheduleAt lambda captures `this` without "
             "revalidating on wake; compare an epoch/generation or "
             "re-look-up membership before touching members (the "
             "epoch-guard pattern in net/channel.cc), or justify with "
             "a lint:allow if the callee revalidates"});
    }
}

void
checkUnboundedQueue(const SourceFile &f, std::vector<Finding> &out)
{
    if (!f.under("src/"))
        return;
    // Queue-shaped members: every std::deque, plus std::vectors whose
    // name says queue. A producer/consumer imbalance turns these into
    // silent memory leaks, so each one must carry a nearby comment
    // documenting what bounds it (or a lint:allow with justification).
    static const std::regex kDeque(
        R"(\bstd\s*::\s*deque\s*<[^;]*>\s*\w+)");
    static const std::regex kVecQueue(
        R"(\bstd\s*::\s*vector\s*<[^;=(]*>\s*\w*)"
        R"((?:[Qq]ueue|[Ff]ifo|[Pp]ending|[Bb]acklog|[Ii]nbox)\w*\s*)"
        R"((?:;|COTERIE_GUARDED_BY))");
    static const std::regex kCapDoc(
        R"([Cc]ap(?:ped|s)?\b|[Bb]ound(?:ed)?\b|[Ll]imit|[Bb]udget)"
        R"(|[Rr]ing\b|[Ff]ixed[- ]size|[Dd]rops? the\b)");
    for (std::size_t li = 0; li < f.strippedLines.size(); ++li) {
        const std::string &line = f.strippedLines[li];
        if (!std::regex_search(line, kDeque) &&
            !std::regex_search(line, kVecQueue))
            continue;
        // The cap must be documented where the member lives: on the
        // declaration line itself or in the contiguous comment block
        // directly above it.
        std::string doc = li < f.rawLines.size() ? f.rawLines[li] : line;
        for (std::size_t k = li; k-- > 0;) {
            const std::string &raw = f.rawLines[k];
            const std::size_t text = raw.find_first_not_of(" \t");
            if (text == std::string::npos)
                break;
            if (raw.compare(text, 2, "//") != 0 &&
                raw.compare(text, 2, "/*") != 0 &&
                raw.compare(text, 1, "*") != 0)
                break;
            doc += '\n';
            doc += raw;
        }
        if (std::regex_search(doc, kCapDoc))
            continue;
        out.push_back(
            {f.path, static_cast<int>(li) + 1, "unbounded-queue",
             "queue-shaped member with no documented growth cap; state "
             "what bounds it in the adjacent comment (count limit, "
             "byte budget, drained-per-event invariant, ...) or "
             "justify with a lint:allow(unbounded-queue)"});
    }
}

void
checkMutexGuardedBy(const SourceFile &f, std::vector<Finding> &out)
{
    if (!f.under("src/"))
        return;
    static const std::regex kDecl(
        R"(\b(?:std\s*::\s*(?:recursive_|shared_|timed_|recursive_timed_)?mutex|(?:support\s*::\s*)?Mutex)\s+(\w+)\s*[;{])");
    const bool hasAnnotations =
        f.stripped.find("GUARDED_BY") != std::string::npos;
    if (hasAnnotations)
        return;
    for (std::size_t li = 0; li < f.strippedLines.size(); ++li) {
        const std::string &line = f.strippedLines[li];
        std::smatch m;
        if (std::regex_search(line, m, kDecl)) {
            out.push_back(
                {f.path, static_cast<int>(li) + 1, "mutex-guarded-by",
                 "mutex member '" + m[1].str() +
                     "' with no GUARDED_BY annotation in this file; "
                     "annotate the data it protects "
                     "(support/thread_annotations.hh)"});
        }
    }
}

/**
 * Determinism taint: iterating an unordered container keyed on a
 * pointer visits elements in address order, which differs run to run
 * (ASLR, allocation order). Token-based so multi-line declarations
 * and nested template arguments resolve correctly.
 */
void
checkPtrKeyedContainer(const SourceFile &f, std::vector<Finding> &out)
{
    if (!f.under("src/"))
        return;
    if (f.stripped.find("unordered_") == std::string::npos)
        return;
    const TokenStream ts = tokenize(f.raw);
    const auto &T = ts.tokens;
    for (std::size_t i = 0; i + 1 < T.size(); ++i) {
        if (T[i].kind != Tok::Ident)
            continue;
        const std::string &name = T[i].text;
        if (name != "unordered_map" && name != "unordered_set" &&
            name != "unordered_multimap" &&
            name != "unordered_multiset")
            continue;
        if (T[i + 1].text != "<")
            continue;
        // Scan the *key* type: up to the first top-level ',' (maps)
        // or the closing '>' (sets).
        int depth = 0;
        bool ptrKey = false;
        for (std::size_t j = i + 1; j < T.size(); ++j) {
            const std::string &x = T[j].text;
            if (T[j].kind != Tok::Punct)
                continue;
            if (x == "<" || x == "(")
                ++depth;
            else if (x == ">" || x == ")") {
                if (--depth == 0)
                    break;
            } else if (x == "," && depth == 1) {
                break;
            } else if (x == "*" && depth == 1) {
                ptrKey = true;
            }
        }
        if (ptrKey)
            out.push_back(
                {f.path, T[i].line, "ptr-keyed-container",
                 "'" + name +
                     "' keyed on a pointer iterates in address order, "
                     "which varies run to run; key on a stable id, or "
                     "lint:allow if iteration order provably never "
                     "reaches an output"});
    }
}

/**
 * Determinism taint: deriving an integer from an object address
 * (reinterpret_cast to uintptr_t) or hashing a pointer feeds ASLR
 * entropy into whatever consumes the value.
 */
void
checkAddressOrdering(const SourceFile &f, std::vector<Finding> &out)
{
    if (!f.under("src/"))
        return;
    static const std::regex kBad(
        R"(reinterpret_cast\s*<\s*(?:std\s*::\s*)?u?intptr_t\s*>)"
        R"(|\bhash\s*<\s*[\w:\s]*\*\s*>)");
    forEachMatch(f, kBad, [&](int line, const std::string &m) {
        out.push_back({f.path, line, "address-ordering",
                       "'" + m +
                           "' derives a value from an object address; "
                           "addresses change across runs (ASLR, "
                           "allocator), so any ordering or hash built "
                           "on them is nondeterministic"});
    });
}

/**
 * Determinism taint: std <random> engines and shuffles outside
 * support/ bypass the seeded support/rng streams the determinism
 * tests rely on.
 */
void
checkAmbientRng(const SourceFile &f, std::vector<Finding> &out)
{
    if (!f.under("src/") || f.under("src/support/"))
        return;
    static const std::regex kBad(
        R"(\bmt19937(?:_64)?\b|\bdefault_random_engine\b)"
        R"(|\bminstd_rand0?\b|\branlux\w+\b|\bknuth_b\b)"
        R"(|\brandom_shuffle\s*\(|\bshuffle\s*\()");
    forEachMatch(f, kBad, [&](int line, const std::string &m) {
        out.push_back({f.path, line, "ambient-rng",
                       "'" + m +
                           "' is randomness outside support/rng; all "
                           "stochastic behaviour in src/ must flow "
                           "through the seeded, stream-split "
                           "support/rng so runs replay bit-identically"});
    });
}

/**
 * FP-contraction discipline (DESIGN.md §10): a COTERIE_SIMD_CLONES
 * kernel is compiled per-ISA, so any libm transcendental inside the
 * cloned body may round differently between clones and break the
 * bit-identical contract. Exactly-rounded IEEE ops (sqrt, fabs,
 * floor, fmin/fmax, ...) are fine; the flagged set is the
 * implementation-defined tail.
 */
void
checkSimdAmbientMath(const SourceFile &f, std::vector<Finding> &out)
{
    if (!f.under("src/") ||
        f.isAnyOf({"src/support/simd.hh"}))
        return;
    if (f.stripped.find("CLONES") == std::string::npos)
        return;
    static const std::set<std::string> kAmbient = [] {
        std::set<std::string> s;
        for (const char *base :
             {"sin", "cos", "tan", "asin", "acos", "atan", "atan2",
              "sinh", "cosh", "tanh", "exp", "exp2", "expm1", "log",
              "log2", "log10", "log1p", "pow", "cbrt", "hypot",
              "fmod", "remainder", "erf", "erfc", "tgamma",
              "lgamma"}) {
            s.insert(base);
            s.insert(std::string(base) + "f");
            s.insert(std::string(base) + "l");
        }
        return s;
    }();

    const TokenStream ts = tokenize(f.raw);
    const auto &T = ts.tokens;
    std::set<int> defineLines;
    for (const Directive &d : ts.directives)
        if (d.name == "define")
            defineLines.insert(d.line);

    auto isCloneMarker = [](const std::string &t) {
        return t.size() > 6 &&
               t.compare(0, 8, "COTERIE_") == 0 &&
               t.compare(t.size() - 6, 6, "CLONES") == 0;
    };

    for (std::size_t i = 0; i < T.size(); ++i) {
        if (T[i].kind != Tok::Ident || !isCloneMarker(T[i].text))
            continue;
        // Markers inside #define lines are aliases, not kernels.
        if (defineLines.count(T[i].line))
            continue;
        // Find the kernel body: the next top-level '{' ... matching '}'.
        std::size_t j = i + 1;
        while (j < T.size() && T[j].text != "{" && T[j].text != ";")
            ++j;
        if (j >= T.size() || T[j].text == ";")
            continue;
        int depth = 0;
        for (; j < T.size(); ++j) {
            if (T[j].kind == Tok::Punct) {
                if (T[j].text == "{")
                    ++depth;
                else if (T[j].text == "}" && --depth == 0)
                    break;
                continue;
            }
            if (T[j].kind == Tok::Ident && kAmbient.count(T[j].text) &&
                j + 1 < T.size() && T[j + 1].text == "(")
                out.push_back(
                    {f.path, T[j].line, "simd-ambient-math",
                     "'" + T[j].text +
                         "(' inside a COTERIE_SIMD_CLONES kernel: "
                         "libm transcendentals are not exactly "
                         "rounded, so per-ISA clones may diverge "
                         "bitwise; hoist the call out of the cloned "
                         "region or use an exact formulation"});
        }
    }
}

/**
 * Cross-lane hazard taint (DESIGN.md §12): under the parallel DES,
 * every component owns exactly one event lane — the `sim::EventQueue&`
 * it was constructed over. Scheduling into (or reading the clock of) a
 * queue reached through *another object's* accessor
 * (`other.queue().scheduleAt(...)`, `mgr.queue().now()`) crosses lane
 * ownership outside the deterministic merge path: mid-round the target
 * heap is owned by a different thread, and even in serial mode the
 * event bypasses the (lane id, timestamp, sequence) merge order. The
 * legal routes are `postControl` (barrier-deferred control action),
 * `scheduleCross` (lookahead-checked lane-to-lane send), or taking the
 * queue by reference at construction so the object joins that lane.
 * Observe-only accessors (pending, executedEvents, laneNow) are fine.
 */
void
checkCrossLane(const SourceFile &f, std::vector<Finding> &out)
{
    if (!f.under("src/") || f.under("src/sim/"))
        return; // the engine itself implements the merge API
    static const std::regex kBad(
        R"((?:\.|->)\s*queue\s*\(\s*\)\s*\.\s*)"
        R"((?:scheduleAt|scheduleIn|now)\s*\()");
    forEachMatch(f, kBad, [&](int line, const std::string &m) {
        out.push_back(
            {f.path, line, "cross-lane",
             "'" + m +
                 "' schedules into (or reads the clock of) a queue "
                 "owned by another component — a cross-lane hazard "
                 "under the parallel DES; route through postControl/"
                 "scheduleCross or take the queue by reference at "
                 "construction"});
    });
}

} // namespace

const std::vector<Rule> &
rules()
{
    static const std::vector<Rule> kRules = {
        {"no-wallclock-rng",
         "src/ outside support/ must not read wall clocks, ambient "
         "randomness, or the environment (std::random_device, rand, "
         "time, clock, system_clock, getenv)",
         checkWallclockRng},
        {"no-raw-thread",
         "no raw std::thread/std::jthread/std::async/.detach()/"
         "pthread_create outside support/parallel",
         checkRawThread},
        {"no-using-namespace-header",
         "headers must not contain 'using namespace'", //
         checkUsingNamespaceHeader},
        {"pragma-once",
         "every header starts with #pragma once", //
         checkPragmaOnce},
        {"no-direct-console-io",
         "src/ must log through support/logging, never printf/cout "
         "directly",
         checkConsoleIo},
        {"mutex-guarded-by",
         "every mutex member in src/ lives in a file that annotates "
         "the data it guards with GUARDED_BY",
         checkMutexGuardedBy},
        {"ambient-clock",
         "src/ must not read std::chrono clocks or time() outside "
         "src/obs/clock.{hh,cc} — the single wall-clock access point",
         checkAmbientClock},
        {"epoch-guarded-schedule",
         "a scheduleIn/scheduleAt lambda capturing `this` must "
         "revalidate on wake (epoch/generation compare or membership "
         "lookup) so stale events are no-ops",
         checkEpochGuardedSchedule},
        {"unbounded-queue",
         "every queue-shaped member (std::deque, queue-named vectors) "
         "in src/ documents what bounds its growth next to the "
         "declaration",
         checkUnboundedQueue},
        {"ptr-keyed-container",
         "no pointer-keyed unordered_map/unordered_set in src/ — "
         "iteration order is address order and varies run to run",
         checkPtrKeyedContainer},
        {"address-ordering",
         "no reinterpret_cast<uintptr_t> / std::hash<T*> in src/ — "
         "address-derived values feed ASLR entropy into results",
         checkAddressOrdering},
        {"ambient-rng",
         "no std <random> engines or shuffles outside support/ — "
         "stochastic behaviour must use the seeded support/rng",
         checkAmbientRng},
        {"simd-ambient-math",
         "no libm transcendentals inside COTERIE_SIMD_CLONES kernels "
         "— per-ISA clones may round them differently",
         checkSimdAmbientMath},
        {"cross-lane",
         "no scheduleAt/scheduleIn/now through another component's "
         "queue() accessor — cross-lane interaction must use the "
         "deterministic merge API (postControl/scheduleCross)",
         checkCrossLane},
    };
    return kRules;
}

std::vector<Finding>
checkSource(const std::string &path, const std::string &content,
            std::size_t *suppressed)
{
    const SourceFile f = SourceFile::parse(path, content);
    std::vector<Finding> all;
    for (const Rule &rule : rules())
        rule.check(f, all);

    std::vector<Finding> kept;
    std::size_t dropped = 0;
    for (Finding &finding : all) {
        const std::size_t li = static_cast<std::size_t>(finding.line) - 1;
        const bool allowed =
            (li < f.rawLines.size() &&
             lineAllowsRule(f.rawLines[li], finding.rule)) ||
            (li >= 1 && li - 1 < f.rawLines.size() &&
             lineAllowsRule(f.rawLines[li - 1], finding.rule));
        if (allowed)
            ++dropped;
        else
            kept.push_back(std::move(finding));
    }
    if (suppressed)
        *suppressed = dropped;

    std::stable_sort(kept.begin(), kept.end(),
                     [](const Finding &a, const Finding &b) {
                         return a.line < b.line;
                     });
    return kept;
}

} // namespace coterie::lint
