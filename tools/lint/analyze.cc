#include "analyze.hh"

#include <algorithm>
#include <functional>
#include <sstream>

namespace coterie::lint {

namespace {

std::string
dirnameOf(const std::string &path)
{
    const auto slash = path.rfind('/');
    return slash == std::string::npos ? "" : path.substr(0, slash);
}

/** Normalize "a/b/../c" and "./" segments. */
std::string
normalizePath(const std::string &path)
{
    std::vector<std::string> parts;
    std::string seg;
    std::istringstream in(path);
    while (std::getline(in, seg, '/')) {
        if (seg.empty() || seg == ".")
            continue;
        if (seg == ".." && !parts.empty() && parts.back() != "..")
            parts.pop_back();
        else
            parts.push_back(seg);
    }
    std::string out;
    for (std::size_t i = 0; i < parts.size(); ++i)
        out += (i ? "/" : "") + parts[i];
    return out;
}

std::string
stemOf(const std::string &path)
{
    const auto dot = path.rfind('.');
    const auto slash = path.rfind('/');
    if (dot == std::string::npos ||
        (slash != std::string::npos && dot < slash))
        return path;
    return path.substr(0, dot);
}

const char *
layerLabel(int layer)
{
    switch (layer) {
      case 0: return "support";
      case 1: return "obs";
      case 2: return "geom/image";
      case 3: return "world/render/trace";
      case 4: return "device/net/sim";
      case 5: return "core";
      case 6: return "bench/tools/tests";
      default: return "unlayered";
    }
}

void
sortFindings(std::vector<Finding> &v)
{
    std::stable_sort(v.begin(), v.end(),
                     [](const Finding &a, const Finding &b) {
                         if (a.file != b.file)
                             return a.file < b.file;
                         return a.line < b.line;
                     });
}

} // namespace

RepoModel
buildRepoModel(
    const std::vector<std::pair<std::string, std::string>> &files)
{
    RepoModel repo;
    repo.files.reserve(files.size());
    for (const auto &[path, content] : files) {
        repo.byPath[path] = repo.files.size();
        repo.files.push_back(buildFileModel(path, tokenize(content)));
        repo.contents[path] = content;
    }
    return repo;
}

int
LayerConfig::layerOf(const std::string &path) const
{
    int best = -1;
    std::size_t bestLen = 0;
    for (const auto &[prefix, layer] : prefixes) {
        if (path.compare(0, prefix.size(), prefix) == 0 &&
            prefix.size() >= bestLen) {
            best = layer;
            bestLen = prefix.size();
        }
    }
    return best;
}

LayerConfig
defaultLayerConfig()
{
    LayerConfig cfg;
    cfg.prefixes = {
        {"src/support/", 0}, {"src/obs/", 1},    {"src/geom/", 2},
        {"src/image/", 2},   {"src/world/", 3},  {"src/render/", 3},
        {"src/trace/", 3},   {"src/device/", 4}, {"src/net/", 4},
        {"src/sim/", 4},     {"src/core/", 5},   {"bench/", 6},
        {"tools/", 6},       {"tests/", 6},      {"examples/", 6},
    };
    return cfg;
}

void
parseAllowlist(const std::string &text, LayerConfig &cfg)
{
    std::istringstream in(text);
    std::string line;
    while (std::getline(in, line)) {
        const auto hash = line.find('#');
        if (hash != std::string::npos)
            line.resize(hash);
        std::istringstream fields(line);
        std::string from, to;
        if (fields >> from >> to)
            cfg.allow.insert({from, to});
    }
}

std::string
resolveInclude(const RepoModel &repo, const std::string &includer,
               const std::string &spelled)
{
    const std::string dir = dirnameOf(includer);
    const std::string candidates[] = {
        spelled,
        "src/" + spelled,
        "tools/lint/" + spelled,
        dir.empty() ? spelled : normalizePath(dir + "/" + spelled),
    };
    for (const std::string &c : candidates)
        if (repo.byPath.count(c))
            return c;
    return "";
}

std::vector<Finding>
analyzeLayering(const RepoModel &repo, const LayerConfig &cfg)
{
    std::vector<Finding> out;

    // Resolved project-include adjacency (index -> indices), with the
    // include line for witnesses.
    struct Edge
    {
        std::size_t to;
        int line;
        std::string spelled;
    };
    std::vector<std::vector<Edge>> adj(repo.files.size());
    for (std::size_t i = 0; i < repo.files.size(); ++i) {
        const FileModel &f = repo.files[i];
        for (const IncludeRef &inc : f.includes) {
            const std::string target =
                resolveInclude(repo, f.path, inc.spelled);
            if (target.empty())
                continue;
            const std::size_t t = repo.byPath.at(target);
            adj[i].push_back({t, inc.line, inc.spelled});
            if (cfg.allow.count({f.path, target}))
                continue;
            const int fromLayer = cfg.layerOf(f.path);
            const int toLayer = cfg.layerOf(target);
            if (fromLayer >= 0 && toLayer >= 0 && toLayer > fromLayer) {
                out.push_back(
                    {f.path, inc.line, "layering",
                     "include of '" + target + "' (layer " +
                         std::to_string(toLayer) + ", " +
                         layerLabel(toLayer) + ") from layer " +
                         std::to_string(fromLayer) + " (" +
                         layerLabel(fromLayer) +
                         ") inverts the layer order support -> obs -> "
                         "geom/image -> world/render/trace -> "
                         "device/net/sim -> core -> bench/tools/tests; "
                         "move the shared code down a layer or add the "
                         "pair to tools/lint/layering_allowlist.txt"});
            }
        }
    }

    // Include cycles: iterative-free recursive DFS with tricolor
    // marking; each distinct cycle reported once.
    enum { White, Grey, Black };
    std::vector<int> color(repo.files.size(), White);
    std::vector<std::size_t> stack;
    std::set<std::string> seenCycles;

    std::function<void(std::size_t)> dfs = [&](std::size_t u) {
        color[u] = Grey;
        stack.push_back(u);
        for (const Edge &e : adj[u]) {
            if (color[e.to] == White) {
                dfs(e.to);
            } else if (color[e.to] == Grey) {
                // Reconstruct u -> ... -> e.to -> u from the stack.
                auto it =
                    std::find(stack.begin(), stack.end(), e.to);
                std::vector<std::size_t> cycle(it, stack.end());
                std::vector<std::size_t> key = cycle;
                std::sort(key.begin(), key.end());
                std::string keyStr;
                for (std::size_t k : key)
                    keyStr += repo.files[k].path + "|";
                if (!seenCycles.insert(keyStr).second)
                    continue;
                std::string path;
                for (std::size_t k : cycle)
                    path += repo.files[k].path + " -> ";
                path += repo.files[e.to].path;
                out.push_back({repo.files[u].path, e.line,
                               "include-cycle",
                               "include cycle: " + path +
                                   "; break it with a forward "
                                   "declaration or by splitting the "
                                   "shared types into a lower header"});
            }
        }
        stack.pop_back();
        color[u] = Black;
    };
    for (std::size_t i = 0; i < repo.files.size(); ++i)
        if (color[i] == White)
            dfs(i);

    sortFindings(out);
    return out;
}

std::vector<Finding>
analyzeUnusedIncludes(const RepoModel &repo)
{
    std::vector<Finding> out;

    // Transitive export closure per file, cycle-safe via memo +
    // in-progress marking (a cycle participant contributes what has
    // been accumulated so far — conservative in the right direction).
    std::vector<std::set<std::string>> closure(repo.files.size());
    std::vector<int> state(repo.files.size(), 0); // 0 new, 1 busy, 2 done
    std::function<const std::set<std::string> &(std::size_t)> exportsOf =
        [&](std::size_t i) -> const std::set<std::string> & {
        if (state[i] != 0)
            return closure[i];
        state[i] = 1;
        const FileModel &f = repo.files[i];
        closure[i] = f.exports;
        for (const IncludeRef &inc : f.includes) {
            const std::string target =
                resolveInclude(repo, f.path, inc.spelled);
            if (target.empty())
                continue;
            const auto &sub = exportsOf(repo.byPath.at(target));
            closure[i].insert(sub.begin(), sub.end());
        }
        state[i] = 2;
        return closure[i];
    };

    for (std::size_t i = 0; i < repo.files.size(); ++i) {
        const FileModel &f = repo.files[i];
        if (f.path.compare(0, 4, "src/") != 0)
            continue;
        for (const IncludeRef &inc : f.includes) {
            const std::string target =
                resolveInclude(repo, f.path, inc.spelled);
            if (target.empty())
                continue;
            // A .cc always keeps its own interface header.
            if (!f.isHeader && stemOf(target) == stemOf(f.path))
                continue;
            const auto &provided = exportsOf(repo.byPath.at(target));
            bool used = false;
            for (const std::string &id : provided)
                if (f.uses.count(id)) {
                    used = true;
                    break;
                }
            if (!used)
                out.push_back(
                    {f.path, inc.line, "unused-include",
                     "nothing declared by '" + inc.spelled +
                         "' (or anything it includes) is referenced "
                         "here; drop the include, or lint:allow("
                         "unused-include) if it is kept for side "
                         "effects"});
        }
    }
    sortFindings(out);
    return out;
}

namespace {

/** One declared mutex, globally indexed by bare name. */
struct MutexEntry
{
    std::string canonical;
    std::string scope;
    bool local = false;
    std::string file;
    int line = 0;
};

struct LockGraph
{
    struct Edge
    {
        std::string to;
        std::string file;
        int line = 0;
        std::string note; ///< "" for direct nesting, else provenance
    };
    std::map<std::string, std::vector<Edge>> adj;
    std::map<std::string, std::pair<std::string, int>> declSite;

    void
    addEdge(const std::string &from, const std::string &to,
            const std::string &file, int line, std::string note)
    {
        if (from == to)
            return; // scoped re-lock of one mutex is not an ordering
        auto &edges = adj[from];
        for (const Edge &e : edges)
            if (e.to == to)
                return; // keep the first witness
        adj[to];        // ensure the node exists
        edges.push_back({to, file, line, std::move(note)});
    }
};

struct LockAnalysis
{
    LockGraph graph;
    std::vector<Finding> findings;
};

LockAnalysis
buildLockGraph(const RepoModel &repo)
{
    LockAnalysis la;

    // --- global mutex index by bare name
    std::map<std::string, std::vector<MutexEntry>> byName;
    for (const FileModel &f : repo.files) {
        for (const MutexDecl &d : f.mutexDecls) {
            MutexEntry e;
            e.scope = d.scope;
            e.local = d.local;
            e.file = f.path;
            e.line = d.line;
            if (!d.scope.empty())
                e.canonical = d.scope + "::" + d.name;
            else if (d.local)
                e.canonical = f.path + "::" + d.name;
            else
                e.canonical = d.name;
            byName[d.name].push_back(std::move(e));
        }
    }

    // --- expression -> canonical mutex resolution
    std::set<std::string> ambiguityReported;
    auto resolve = [&](const std::string &name,
                       const std::string &klass,
                       const std::string &file, int useLine,
                       bool reportAmbiguity) -> std::string {
        const auto it = byName.find(name);
        if (it == byName.end())
            return ""; // not a modeled mutex (e.g. std containers)
        const auto &cands = it->second;
        if (!klass.empty()) {
            const MutexEntry *member = nullptr;
            bool memberAmbiguous = false;
            for (const MutexEntry &e : cands) {
                const bool match =
                    e.scope == klass ||
                    e.scope.compare(0, klass.size() + 2,
                                    klass + "::") == 0;
                if (match) {
                    if (member)
                        memberAmbiguous = true;
                    member = &e;
                }
            }
            if (member && !memberAmbiguous)
                return member->canonical;
        }
        // Function locals: same file wins.
        for (const MutexEntry &e : cands)
            if (e.local && e.file == file)
                return e.canonical;
        std::set<std::string> distinct;
        for (const MutexEntry &e : cands)
            distinct.insert(e.canonical);
        if (distinct.size() == 1)
            return *distinct.begin();
        if (reportAmbiguity &&
            ambiguityReported.insert(name).second) {
            std::string sites;
            for (const MutexEntry &e : cands)
                sites += (sites.empty() ? "" : ", ") + e.file + ":" +
                         std::to_string(e.line);
            la.findings.push_back(
                {file, useLine, "lock-order-ambiguity",
                 "lock expression '" + name + "' resolves to " +
                     std::to_string(distinct.size()) +
                     " declarations (" + sites +
                     "); rename the mutexes so the lock-order graph "
                     "is unambiguous"});
        }
        return "";
    };

    // --- record decl sites for DOT / messages
    for (const auto &[name, entries] : byName)
        for (const MutexEntry &e : entries)
            la.graph.declSite.emplace(e.canonical,
                                      std::make_pair(e.file, e.line));

    // --- merge REQUIRES contracts seen on declarations
    std::map<std::string, std::vector<std::string>> declReq;
    for (const FileModel &f : repo.files)
        for (const DeclRequires &d : f.declRequires) {
            auto &v = declReq[d.klass + "::" + d.name];
            v.insert(v.end(), d.mutexes.begin(), d.mutexes.end());
        }

    // --- function index for one-level call propagation
    struct FuncRef
    {
        const FileModel *file;
        const FuncRecord *func;
    };
    std::map<std::string, std::vector<FuncRef>> funcsByName;
    for (const FileModel &f : repo.files)
        for (const FuncRecord &fn : f.funcs)
            funcsByName[fn.name].push_back({&f, &fn});

    auto effectiveRequires = [&](const FuncRecord &fn) {
        std::vector<std::string> reqs = fn.requiresExprs;
        const auto it = declReq.find(fn.klass + "::" + fn.name);
        if (it != declReq.end())
            reqs.insert(reqs.end(), it->second.begin(),
                        it->second.end());
        return reqs;
    };

    for (const FileModel &f : repo.files) {
        for (const FuncRecord &fn : f.funcs) {
            const auto reqs = effectiveRequires(fn);
            // Direct nesting edges recorded by the model.
            for (const FuncRecord::BodyEdge &e : fn.edges) {
                const std::string from = resolve(
                    e.fromExpr, fn.klass, f.path, e.line, true);
                const std::string to = resolve(e.toExpr, fn.klass,
                                               f.path, e.line, true);
                if (!from.empty() && !to.empty())
                    la.graph.addEdge(from, to, f.path, e.line,
                                     e.fromRequires ? "REQUIRES" : "");
            }
            // Contract edges from header-side REQUIRES (the model
            // only saw the definition, which carries no annotation).
            for (const std::string &req : reqs)
                for (const FuncRecord::Acquire &a : fn.acquires) {
                    const std::string from = resolve(
                        req, fn.klass, f.path, a.line, true);
                    const std::string to = resolve(
                        a.expr, fn.klass, f.path, a.line, true);
                    if (!from.empty() && !to.empty())
                        la.graph.addEdge(from, to, f.path, a.line,
                                         "REQUIRES");
                }
            // One level of call propagation, restricted to targets
            // whose class is known (same class or explicit Class::) —
            // enough for helper methods, without hallucinating edges
            // from STL calls that share a name.
            for (const FuncRecord::Call &call : fn.calls) {
                std::vector<std::string> held = call.heldExprs;
                held.insert(held.end(), reqs.begin(), reqs.end());
                if (held.empty())
                    continue;
                const std::string wantKlass =
                    call.klass.empty() ? fn.klass : call.klass;
                if (wantKlass.empty())
                    continue;
                const auto it = funcsByName.find(call.name);
                if (it == funcsByName.end())
                    continue;
                for (const FuncRef &ref : it->second) {
                    if (ref.func->klass != wantKlass)
                        continue;
                    for (const FuncRecord::Acquire &a :
                         ref.func->acquires) {
                        const std::string to = resolve(
                            a.expr, ref.func->klass, ref.file->path,
                            a.line, false);
                        if (to.empty())
                            continue;
                        for (const std::string &h : held) {
                            const std::string from = resolve(
                                h, fn.klass, f.path, call.line,
                                false);
                            if (!from.empty())
                                la.graph.addEdge(
                                    from, to, ref.file->path, a.line,
                                    "via " + wantKlass +
                                        "::" + call.name + " called "
                                        "from " + f.path + ":" +
                                        std::to_string(call.line));
                        }
                    }
                }
            }
        }
    }
    return la;
}

} // namespace

std::vector<Finding>
analyzeLockOrder(const RepoModel &repo)
{
    LockAnalysis la = buildLockGraph(repo);
    std::vector<Finding> out = std::move(la.findings);
    const LockGraph &g = la.graph;

    // Cycle detection over the lock graph; each distinct cycle once.
    enum { White, Grey, Black };
    std::map<std::string, int> color;
    for (const auto &[node, _] : g.adj)
        color[node] = White;
    std::vector<std::string> stack;
    std::set<std::string> seenCycles;

    std::function<void(const std::string &)> dfs =
        [&](const std::string &u) {
            color[u] = Grey;
            stack.push_back(u);
            const auto it = g.adj.find(u);
            if (it != g.adj.end()) {
                for (const LockGraph::Edge &e : it->second) {
                    if (color[e.to] == White) {
                        dfs(e.to);
                    } else if (color[e.to] == Grey) {
                        auto sit = std::find(stack.begin(),
                                             stack.end(), e.to);
                        std::vector<std::string> cycle(sit,
                                                       stack.end());
                        std::vector<std::string> key = cycle;
                        std::sort(key.begin(), key.end());
                        std::string keyStr;
                        for (const std::string &k : key)
                            keyStr += k + "|";
                        if (!seenCycles.insert(keyStr).second)
                            continue;
                        // Build "a -> b (file:line) -> a (file:line)"
                        // citing the witness for every edge, so both
                        // inversion paths of a 2-cycle are in the
                        // message.
                        std::string msg =
                            "potential deadlock: " + cycle.front();
                        std::string firstFile = cycle.front();
                        int firstLine = 0;
                        for (std::size_t k = 0; k < cycle.size();
                             ++k) {
                            const std::string &from = cycle[k];
                            const std::string &to =
                                k + 1 < cycle.size() ? cycle[k + 1]
                                                     : cycle.front();
                            const auto ait = g.adj.find(from);
                            for (const LockGraph::Edge &fe :
                                 ait->second) {
                                if (fe.to != to)
                                    continue;
                                msg += " -> " + to + " (" + fe.file +
                                       ":" +
                                       std::to_string(fe.line);
                                if (!fe.note.empty())
                                    msg += ", " + fe.note;
                                msg += ")";
                                if (firstLine == 0) {
                                    firstFile = fe.file;
                                    firstLine = fe.line;
                                }
                                break;
                            }
                        }
                        out.push_back({firstFile, firstLine,
                                       "lock-order-cycle", msg});
                    }
                }
            }
            stack.pop_back();
            color[u] = Black;
        };
    for (const auto &[node, _] : g.adj)
        if (color[node] == White)
            dfs(node);

    sortFindings(out);
    return out;
}

std::vector<Finding>
applySuppressions(const RepoModel &repo, std::vector<Finding> findings,
                  std::size_t *suppressed)
{
    // Per-file raw lines, split on demand.
    std::map<std::string, std::vector<std::string>> linesByFile;
    auto linesOf =
        [&](const std::string &path) -> const std::vector<std::string> & {
        auto it = linesByFile.find(path);
        if (it != linesByFile.end())
            return it->second;
        std::vector<std::string> lines;
        const auto cit = repo.contents.find(path);
        if (cit != repo.contents.end()) {
            std::istringstream in(cit->second);
            std::string line;
            while (std::getline(in, line))
                lines.push_back(line);
        }
        return linesByFile.emplace(path, std::move(lines))
            .first->second;
    };

    std::vector<Finding> kept;
    std::size_t dropped = 0;
    for (Finding &f : findings) {
        const auto &lines = linesOf(f.file);
        const std::size_t li = static_cast<std::size_t>(f.line) - 1;
        const bool allowed =
            (li < lines.size() && lineAllowsRule(lines[li], f.rule)) ||
            (li >= 1 && li - 1 < lines.size() &&
             lineAllowsRule(lines[li - 1], f.rule));
        if (allowed)
            ++dropped;
        else
            kept.push_back(std::move(f));
    }
    if (suppressed)
        *suppressed = dropped;
    return kept;
}

std::vector<Finding>
analyzeRepo(const RepoModel &repo, const LayerConfig &cfg,
            std::size_t *suppressed)
{
    std::vector<Finding> all = analyzeLayering(repo, cfg);
    for (auto &f : analyzeUnusedIncludes(repo))
        all.push_back(std::move(f));
    for (auto &f : analyzeLockOrder(repo))
        all.push_back(std::move(f));
    all = applySuppressions(repo, std::move(all), suppressed);
    sortFindings(all);
    return all;
}

std::string
includeGraphDot(const RepoModel &repo, const LayerConfig &cfg)
{
    std::ostringstream out;
    out << "digraph coterie_includes {\n"
        << "  rankdir=BT;\n"
        << "  node [shape=box, fontsize=10];\n";
    // Cluster files by layer so the order reads bottom-up.
    std::map<int, std::vector<const FileModel *>> byLayer;
    for (const FileModel &f : repo.files)
        byLayer[cfg.layerOf(f.path)].push_back(&f);
    for (const auto &[layer, files] : byLayer) {
        if (layer >= 0) {
            out << "  subgraph cluster_layer" << layer << " {\n"
                << "    label=\"layer " << layer << ": "
                << layerLabel(layer) << "\";\n";
        }
        for (const FileModel *f : files)
            out << (layer >= 0 ? "    " : "  ") << "\"" << f->path
                << "\";\n";
        if (layer >= 0)
            out << "  }\n";
    }
    for (const FileModel &f : repo.files)
        for (const IncludeRef &inc : f.includes) {
            const std::string target =
                resolveInclude(repo, f.path, inc.spelled);
            if (!target.empty())
                out << "  \"" << f.path << "\" -> \"" << target
                    << "\";\n";
        }
    out << "}\n";
    return out.str();
}

std::string
lockOrderDot(const RepoModel &repo)
{
    LockAnalysis la = buildLockGraph(repo);
    std::ostringstream out;
    out << "digraph coterie_lock_order {\n"
        << "  rankdir=LR;\n"
        << "  node [shape=ellipse, fontsize=10];\n";
    // Every declared mutex is a node, edges or not: rank-isolated
    // locks are exactly what future refactors want to see.
    std::set<std::string> nodes;
    for (const auto &[node, site] : la.graph.declSite)
        nodes.insert(node);
    for (const auto &[node, edges] : la.graph.adj)
        nodes.insert(node);
    for (const std::string &node : nodes) {
        const auto dit = la.graph.declSite.find(node);
        out << "  \"" << node << "\"";
        if (dit != la.graph.declSite.end())
            out << " [tooltip=\"" << dit->second.first << ":"
                << dit->second.second << "\"]";
        out << ";\n";
    }
    for (const auto &[node, edges] : la.graph.adj)
        for (const LockGraph::Edge &e : edges) {
            out << "  \"" << node << "\" -> \"" << e.to
                << "\" [label=\"" << e.file << ":" << e.line;
            if (!e.note.empty())
                out << "\\n" << e.note;
            out << "\"];\n";
        }
    out << "}\n";
    return out.str();
}

} // namespace coterie::lint
