/**
 * @file
 * coterie-lint CLI: walk source trees, run the per-file rule engine
 * plus the cross-translation-unit analyses (coterie-analyze), report.
 *
 *   coterie-lint [--root DIR] [--report FILE] [--allowlist FILE]
 *                [--graph=dot] [--list-rules] PATH...
 *
 * PATHs are files or directories, resolved against --root (default:
 * the current directory). Reported paths are root-relative, so the
 * CTest registration `coterie-lint --root ${CMAKE_SOURCE_DIR} src
 * tests bench tools` produces stable diagnostics. Exit status is 1
 * iff any unsuppressed finding was produced. --report writes a
 * machine-readable JSON summary.
 *
 * Cross-file passes (analyze.hh): include-graph layering + cycle
 * detection run over every scanned file; the unused-include pass is
 * scoped to src/ inside the analysis itself; the static lock-order
 * pass runs over src/ only — test bodies deliberately construct lock
 * inversions (runtime-validator fixtures) that must not fail the
 * repo-wide gate. Layering exceptions come from --allowlist (default:
 * tools/lint/layering_allowlist.txt under the root, when present).
 *
 * --graph=dot prints the include DAG and the lock-order DAG as two
 * Graphviz digraphs on stdout and exits (see DESIGN.md §7).
 */

#include "analyze.hh"
#include "lint.hh"

#include <algorithm>
#include <cstdio>
#include <filesystem>
#include <fstream>
#include <iostream>
#include <sstream>
#include <string>
#include <vector>

namespace fs = std::filesystem;
using coterie::lint::Finding;

namespace {

bool
isSourceFile(const fs::path &p)
{
    const std::string ext = p.extension().string();
    return ext == ".cc" || ext == ".hh" || ext == ".cpp" ||
           ext == ".hpp" || ext == ".h" || ext == ".cxx";
}

/** Directories never worth scanning (build trees, VCS, outputs). */
bool
isSkippedDir(const fs::path &p)
{
    const std::string name = p.filename().string();
    return name == ".git" || name == "results" ||
           name.rfind("build", 0) == 0 || name == "fixtures";
}

void
collectFiles(const fs::path &path, std::vector<fs::path> &out)
{
    if (fs::is_regular_file(path)) {
        if (isSourceFile(path))
            out.push_back(path);
        return;
    }
    if (!fs::is_directory(path))
        return;
    for (auto it = fs::recursive_directory_iterator(path);
         it != fs::recursive_directory_iterator(); ++it) {
        if (it->is_directory() && isSkippedDir(it->path())) {
            it.disable_recursion_pending();
            continue;
        }
        if (it->is_regular_file() && isSourceFile(it->path()))
            out.push_back(it->path());
    }
}

std::string
jsonEscape(const std::string &s)
{
    std::string out;
    for (char c : s) {
        switch (c) {
          case '"': out += "\\\""; break;
          case '\\': out += "\\\\"; break;
          case '\n': out += "\\n"; break;
          case '\t': out += "\\t"; break;
          default:
            if (static_cast<unsigned char>(c) < 0x20) {
                char buf[8];
                std::snprintf(buf, sizeof(buf), "\\u%04x", c);
                out += buf;
            } else {
                out += c;
            }
        }
    }
    return out;
}

void
writeReport(const std::string &path, const std::vector<Finding> &findings,
            std::size_t filesScanned, std::size_t suppressed)
{
    std::ofstream out(path);
    out << "{\n  \"filesScanned\": " << filesScanned
        << ",\n  \"suppressed\": " << suppressed
        << ",\n  \"findings\": [\n";
    for (std::size_t i = 0; i < findings.size(); ++i) {
        const Finding &f = findings[i];
        out << "    {\"file\": \"" << jsonEscape(f.file)
            << "\", \"line\": " << f.line << ", \"rule\": \""
            << jsonEscape(f.rule) << "\", \"message\": \""
            << jsonEscape(f.message) << "\"}"
            << (i + 1 < findings.size() ? "," : "") << "\n";
    }
    out << "  ]\n}\n";
}

} // namespace

int
main(int argc, char **argv)
{
    fs::path root = fs::current_path();
    std::string reportPath;
    std::string allowlistPath;
    bool graphDot = false;
    std::vector<std::string> targets;

    for (int i = 1; i < argc; ++i) {
        const std::string arg = argv[i];
        if (arg == "--root" && i + 1 < argc) {
            root = argv[++i];
        } else if (arg == "--report" && i + 1 < argc) {
            reportPath = argv[++i];
        } else if (arg == "--allowlist" && i + 1 < argc) {
            allowlistPath = argv[++i];
        } else if (arg == "--graph=dot") {
            graphDot = true;
        } else if (arg == "--list-rules") {
            for (const auto &rule : coterie::lint::rules())
                std::cout << rule.name << "\n    " << rule.description
                          << "\n";
            return 0;
        } else if (arg == "--help" || arg == "-h") {
            std::cout << "usage: coterie-lint [--root DIR] "
                         "[--report FILE] [--allowlist FILE] "
                         "[--graph=dot] [--list-rules] PATH...\n";
            return 0;
        } else if (!arg.empty() && arg[0] == '-') {
            std::cerr << "coterie-lint: unknown option '" << arg << "'\n";
            return 2;
        } else {
            targets.push_back(arg);
        }
    }
    if (targets.empty()) {
        std::cerr << "coterie-lint: no paths given (try --help)\n";
        return 2;
    }

    root = fs::absolute(root).lexically_normal();
    std::vector<fs::path> files;
    for (const std::string &t : targets) {
        const fs::path p = fs::path(t).is_absolute()
                               ? fs::path(t)
                               : root / t;
        if (!fs::exists(p)) {
            std::cerr << "coterie-lint: no such path: " << p << "\n";
            return 2;
        }
        collectFiles(p, files);
    }

    std::vector<Finding> findings;
    std::size_t suppressed = 0;
    std::vector<std::pair<std::string, std::string>> contents;
    for (const fs::path &file : files) {
        std::ifstream in(file, std::ios::binary);
        std::ostringstream content;
        content << in.rdbuf();
        const std::string rel =
            fs::relative(file, root).generic_string();
        contents.emplace_back(rel, content.str());
        std::size_t fileSuppressed = 0;
        auto fileFindings =
            coterie::lint::checkSource(rel, contents.back().second,
                                       &fileSuppressed);
        suppressed += fileSuppressed;
        findings.insert(findings.end(), fileFindings.begin(),
                        fileFindings.end());
    }

    // --- cross-file analyses (coterie-analyze)
    coterie::lint::LayerConfig cfg =
        coterie::lint::defaultLayerConfig();
    {
        fs::path al = allowlistPath.empty()
                          ? root / "tools/lint/layering_allowlist.txt"
                          : fs::path(allowlistPath);
        if (!al.is_absolute())
            al = root / al;
        if (fs::exists(al)) {
            std::ifstream in(al);
            std::ostringstream text;
            text << in.rdbuf();
            coterie::lint::parseAllowlist(text.str(), cfg);
        }
    }
    const coterie::lint::RepoModel repo =
        coterie::lint::buildRepoModel(contents);
    // Lock-order analysis runs over src/ only: tests deliberately
    // build lock inversions to exercise the runtime validator.
    std::vector<std::pair<std::string, std::string>> srcOnly;
    for (const auto &fc : contents)
        if (fc.first.compare(0, 4, "src/") == 0)
            srcOnly.push_back(fc);
    const coterie::lint::RepoModel srcRepo =
        coterie::lint::buildRepoModel(srcOnly);

    if (graphDot) {
        std::cout << coterie::lint::includeGraphDot(repo, cfg)
                  << coterie::lint::lockOrderDot(srcRepo);
        return 0;
    }

    std::vector<Finding> analysis =
        coterie::lint::analyzeLayering(repo, cfg);
    for (auto &f : coterie::lint::analyzeUnusedIncludes(repo))
        analysis.push_back(std::move(f));
    for (auto &f : coterie::lint::analyzeLockOrder(srcRepo))
        analysis.push_back(std::move(f));
    std::size_t analysisSuppressed = 0;
    analysis = coterie::lint::applySuppressions(
        repo, std::move(analysis), &analysisSuppressed);
    suppressed += analysisSuppressed;
    findings.insert(findings.end(), analysis.begin(), analysis.end());
    std::stable_sort(findings.begin(), findings.end(),
                     [](const Finding &a, const Finding &b) {
                         if (a.file != b.file)
                             return a.file < b.file;
                         return a.line < b.line;
                     });

    for (const Finding &f : findings)
        std::cout << f.file << ":" << f.line << ": [" << f.rule << "] "
                  << f.message << "\n";

    if (!reportPath.empty())
        writeReport(reportPath, findings, files.size(), suppressed);

    std::cout << "coterie-lint: " << files.size() << " files, "
              << findings.size() << " finding"
              << (findings.size() == 1 ? "" : "s") << " (" << suppressed
              << " suppressed)\n";
    return findings.empty() ? 0 : 1;
}
