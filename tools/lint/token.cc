#include "token.hh"

#include <cctype>

namespace coterie::lint {

namespace {

bool
isIdentStart(char c)
{
    return std::isalpha(static_cast<unsigned char>(c)) != 0 || c == '_';
}

bool
isIdentChar(char c)
{
    return std::isalnum(static_cast<unsigned char>(c)) != 0 || c == '_';
}

bool
isDigit(char c)
{
    return std::isdigit(static_cast<unsigned char>(c)) != 0;
}

/** Encoding prefixes that may precede a string/char literal. */
bool
isLiteralPrefix(const std::string &ident)
{
    return ident == "R" || ident == "u8R" || ident == "uR" ||
           ident == "UR" || ident == "LR" || ident == "L" ||
           ident == "u" || ident == "U" || ident == "u8";
}

} // namespace

TokenStream
tokenize(const std::string &src)
{
    // Phase 1: splice backslash-newline continuations into one logical
    // text, keeping a physical-line index per spliced character.
    std::string s;
    std::vector<int> lineAt;
    s.reserve(src.size());
    lineAt.reserve(src.size());
    {
        int line = 1;
        for (std::size_t i = 0; i < src.size(); ++i) {
            const char c = src[i];
            if (c == '\\' && i + 1 < src.size() &&
                (src[i + 1] == '\n' ||
                 (src[i + 1] == '\r' && i + 2 < src.size() &&
                  src[i + 2] == '\n'))) {
                i += src[i + 1] == '\r' ? 2 : 1;
                ++line;
                continue;
            }
            s += c;
            lineAt.push_back(line);
            if (c == '\n')
                ++line;
        }
    }

    TokenStream out;
    const std::size_t n = s.size();
    std::size_t i = 0;
    bool atLineStart = true;

    auto lineOf = [&](std::size_t at) {
        return at < lineAt.size() ? lineAt[at] : (lineAt.empty()
                                                      ? 1
                                                      : lineAt.back());
    };
    auto push = [&](Tok kind, std::string text, std::size_t at) {
        out.tokens.push_back({kind, std::move(text), lineOf(at)});
        atLineStart = false;
    };

    // Scan a cooked string/char literal starting at the opening quote;
    // returns the content (delimiters excluded), advances i past the
    // closing quote (or the newline of an unterminated literal).
    auto scanCooked = [&](char quote) {
        std::string content;
        ++i; // opening quote
        while (i < n && s[i] != quote && s[i] != '\n') {
            if (s[i] == '\\' && i + 1 < n) {
                content += s[i];
                content += s[i + 1];
                i += 2;
            } else {
                content += s[i++];
            }
        }
        if (i < n && s[i] == quote)
            ++i;
        return content;
    };

    while (i < n) {
        const char c = s[i];
        if (c == '\n') {
            atLineStart = true;
            ++i;
            continue;
        }
        if (c == ' ' || c == '\t' || c == '\r' || c == '\v' ||
            c == '\f') {
            ++i;
            continue;
        }
        if (c == '/' && i + 1 < n && s[i + 1] == '/') {
            while (i < n && s[i] != '\n')
                ++i;
            continue;
        }
        if (c == '/' && i + 1 < n && s[i + 1] == '*') {
            // Block comments do not nest: an inner "/*" is comment
            // text, the first "*/" closes.
            i += 2;
            while (i + 1 < n && !(s[i] == '*' && s[i + 1] == '/'))
                ++i;
            i = i + 1 < n ? i + 2 : n;
            continue;
        }
        if (c == '#' && atLineStart) {
            const std::size_t hashAt = i;
            ++i;
            while (i < n && (s[i] == ' ' || s[i] == '\t'))
                ++i;
            std::string name;
            while (i < n && isIdentChar(s[i]))
                name += s[i++];
            Directive d;
            d.name = name;
            d.line = lineOf(hashAt);
            if (name == "include" || name == "include_next") {
                while (i < n && (s[i] == ' ' || s[i] == '\t'))
                    ++i;
                if (i < n && (s[i] == '"' || s[i] == '<')) {
                    const char close = s[i] == '"' ? '"' : '>';
                    d.systemInclude = close == '>';
                    ++i;
                    while (i < n && s[i] != close && s[i] != '\n')
                        d.arg += s[i++];
                }
                // The include line carries no code tokens.
                while (i < n && s[i] != '\n')
                    ++i;
            } else {
                // Record the first identifier argument (macro name,
                // condition head); the directive body is then lexed
                // normally so macro bodies contribute defs *and* uses.
                std::size_t j = i;
                while (j < n && (s[j] == ' ' || s[j] == '\t'))
                    ++j;
                while (j < n && isIdentChar(s[j]))
                    d.arg += s[j++];
            }
            out.directives.push_back(std::move(d));
            atLineStart = false;
            continue;
        }
        if (isIdentStart(c)) {
            const std::size_t start = i;
            std::string ident;
            while (i < n && isIdentChar(s[i]))
                ident += s[i++];
            if (i < n && (s[i] == '"' || s[i] == '\'') &&
                isLiteralPrefix(ident)) {
                // Encoding/raw prefix, not an identifier.
                const bool raw = ident.back() == 'R';
                if (s[i] == '"' && raw) {
                    std::string delim = ")";
                    ++i; // opening quote
                    while (i < n && s[i] != '(')
                        delim += s[i++];
                    delim += '"';
                    ++i; // the '('
                    std::string content;
                    while (i < n &&
                           s.compare(i, delim.size(), delim) != 0)
                        content += s[i++];
                    i = i < n ? i + delim.size() : n;
                    push(Tok::String, std::move(content), start);
                } else if (s[i] == '"') {
                    push(Tok::String, scanCooked('"'), start);
                } else {
                    push(Tok::Char, scanCooked('\''), start);
                }
                continue;
            }
            push(Tok::Ident, std::move(ident), start);
            continue;
        }
        if (isDigit(c) || (c == '.' && i + 1 < n && isDigit(s[i + 1]))) {
            // pp-number: digits, idents chars, '.', digit separators,
            // and signs directly after an exponent marker.
            const std::size_t start = i;
            std::string num;
            num += s[i++];
            while (i < n) {
                const char d = s[i];
                if (isIdentChar(d) || d == '.') {
                    num += s[i++];
                } else if (d == '\'' && i + 1 < n &&
                           isIdentChar(s[i + 1])) {
                    num += s[i++];
                } else if ((d == '+' || d == '-') && !num.empty() &&
                           (num.back() == 'e' || num.back() == 'E' ||
                            num.back() == 'p' || num.back() == 'P')) {
                    num += s[i++];
                } else {
                    break;
                }
            }
            push(Tok::Number, std::move(num), start);
            continue;
        }
        if (c == '"') {
            const std::size_t start = i;
            push(Tok::String, scanCooked('"'), start);
            continue;
        }
        if (c == '\'') {
            const std::size_t start = i;
            push(Tok::Char, scanCooked('\''), start);
            continue;
        }
        // Punctuation: "::" and "->" as units, all else single char.
        if (c == ':' && i + 1 < n && s[i + 1] == ':') {
            push(Tok::Punct, "::", i);
            i += 2;
            continue;
        }
        if (c == '-' && i + 1 < n && s[i + 1] == '>') {
            push(Tok::Punct, "->", i);
            i += 2;
            continue;
        }
        push(Tok::Punct, std::string(1, c), i);
        ++i;
    }
    return out;
}

} // namespace coterie::lint
