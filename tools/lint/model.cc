#include "model.hh"

#include <algorithm>

namespace coterie::lint {

namespace {

bool
isClassKey(const std::string &t)
{
    return t == "class" || t == "struct" || t == "union";
}

bool
isControlKeyword(const std::string &t)
{
    return t == "if" || t == "for" || t == "while" || t == "switch" ||
           t == "return" || t == "sizeof" || t == "catch" ||
           t == "alignof" || t == "decltype" || t == "throw" ||
           t == "new" || t == "delete" || t == "co_return" ||
           t == "co_await" || t == "static_assert";
}

bool
isLockClass(const std::string &t)
{
    return t == "MutexLock" || t == "lock_guard" || t == "unique_lock" ||
           t == "scoped_lock" || t == "shared_lock";
}

bool
isLockTag(const std::string &t)
{
    return t == "defer_lock" || t == "try_to_lock" || t == "adopt_lock";
}

using TokVec = std::vector<const Token *>;

/** Skip a balanced (), [], {}, or <> group starting at @p i (which
 *  must point at the opener); returns the index past the closer. */
std::size_t
skipBalanced(const TokVec &t, std::size_t i, const char *open,
             const char *close)
{
    int depth = 0;
    for (; i < t.size(); ++i) {
        if (t[i]->kind == Tok::Punct && t[i]->text == open)
            ++depth;
        else if (t[i]->kind == Tok::Punct && t[i]->text == close &&
                 --depth == 0)
            return i + 1;
    }
    return t.size();
}

/** Remove template headers (`template < ... >`) from a declaration. */
TokVec
stripTemplateHeaders(const TokVec &in)
{
    TokVec out;
    for (std::size_t i = 0; i < in.size();) {
        if (in[i]->kind == Tok::Ident && in[i]->text == "template" &&
            i + 1 < in.size() && in[i + 1]->text == "<") {
            i = skipBalanced(in, i + 1, "<", ">");
            continue;
        }
        out.push_back(in[i++]);
    }
    return out;
}

/**
 * Parse the (possibly qualified) name after a class-key / `namespace`
 * at @p i, skipping attribute macros (`COTERIE_CAPABILITY("x")`) and
 * `[[...]]` attributes. Returns the joined name ("Outer::Nested").
 */
std::string
parseScopeName(const TokVec &t, std::size_t i)
{
    std::string name;
    while (i < t.size()) {
        const Token &tok = *t[i];
        if (tok.kind == Tok::Ident) {
            if (i + 1 < t.size() && t[i + 1]->text == "(") {
                // attribute macro: skip its argument list
                i = skipBalanced(t, i + 1, "(", ")");
                continue;
            }
            if (tok.text == "final" || tok.text == "alignas")
                break;
            name += tok.text;
            if (i + 1 < t.size() && t[i + 1]->text == "::") {
                name += "::";
                i += 2;
                continue;
            }
            break;
        }
        if (tok.text == "[") { // [[attr]]
            i = skipBalanced(t, i, "[", "]");
            continue;
        }
        if (tok.text == ":" || tok.text == "{" || tok.text == ";")
            break;
        ++i;
    }
    return name;
}

/** Last Ident in a token range, or "". */
std::string
lastIdent(const TokVec &t, std::size_t begin, std::size_t end)
{
    for (std::size_t i = end; i > begin; --i)
        if (t[i - 1]->kind == Tok::Ident)
            return t[i - 1]->text;
    return "";
}

/** Split a top-level comma-separated argument range into per-argument
 *  final identifiers (lock tags filtered out). */
std::vector<std::string>
splitLockArgs(const TokVec &t, std::size_t begin, std::size_t end)
{
    std::vector<std::string> out;
    int depth = 0;
    std::size_t argBegin = begin;
    auto flush = [&](std::size_t argEnd) {
        const std::string id = lastIdent(t, argBegin, argEnd);
        if (!id.empty() && !isLockTag(id))
            out.push_back(id);
    };
    for (std::size_t i = begin; i < end; ++i) {
        const std::string &x = t[i]->text;
        if (t[i]->kind == Tok::Punct) {
            if (x == "(" || x == "[" || x == "{" || x == "<")
                ++depth;
            else if (x == ")" || x == "]" || x == "}" || x == ">")
                --depth;
            else if (x == "," && depth == 0) {
                flush(i);
                argBegin = i + 1;
            }
        }
    }
    flush(end);
    return out;
}

/** COTERIE_REQUIRES(args...) anywhere in a declaration, reduced. */
std::vector<std::string>
parseRequires(const TokVec &t)
{
    std::vector<std::string> out;
    for (std::size_t i = 0; i + 1 < t.size(); ++i) {
        if (t[i]->kind == Tok::Ident &&
            t[i]->text == "COTERIE_REQUIRES" && t[i + 1]->text == "(") {
            const std::size_t close = skipBalanced(t, i + 1, "(", ")");
            const auto args = splitLockArgs(t, i + 2, close - 1);
            out.insert(out.end(), args.begin(), args.end());
            i = close;
        }
    }
    return out;
}

/** Kind of scope a `{` opens. */
struct ScopeInfo
{
    enum Kind { Namespace, Class, Enum, Function, Block } kind = Block;
    std::string name;  ///< namespace/class/enum name or function name
    std::string klass; ///< function: explicit Class:: qualifier
    std::vector<std::string> requiresExprs; ///< function contracts
};

/**
 * Classify the statement tokens preceding a `{`. Heuristic order:
 * namespace, enum, class/struct/union, `=`-initializer, function
 * (top-level paren group with a name before it), else plain block.
 */
ScopeInfo
classify(const TokVec &declIn)
{
    ScopeInfo info;
    const TokVec decl = stripTemplateHeaders(declIn);
    int depth = 0;
    std::size_t firstParen = decl.size();
    for (std::size_t i = 0; i < decl.size(); ++i) {
        const Token &tok = *decl[i];
        if (tok.kind == Tok::Punct) {
            if (tok.text == "(") {
                if (depth == 0 && firstParen == decl.size())
                    firstParen = i;
                ++depth;
            } else if (tok.text == ")") {
                --depth;
            } else if (tok.text == "=" && depth == 0) {
                return info; // brace initializer
            }
            continue;
        }
        if (tok.kind != Tok::Ident || depth != 0)
            continue;
        if (tok.text == "namespace") {
            info.kind = ScopeInfo::Namespace;
            info.name = parseScopeName(decl, i + 1);
            return info;
        }
        if (tok.text == "enum") {
            info.kind = ScopeInfo::Enum;
            std::size_t j = i + 1;
            if (j < decl.size() && (decl[j]->text == "class" ||
                                    decl[j]->text == "struct"))
                ++j;
            info.name = parseScopeName(decl, j);
            return info;
        }
        if (isClassKey(tok.text)) {
            info.kind = ScopeInfo::Class;
            info.name = parseScopeName(decl, i + 1);
            return info;
        }
    }
    if (firstParen != decl.size() && firstParen > 0 &&
        decl[firstParen - 1]->kind == Tok::Ident &&
        !isControlKeyword(decl[firstParen - 1]->text)) {
        info.kind = ScopeInfo::Function;
        info.name = decl[firstParen - 1]->text;
        // Walk back a Class::chain qualifier.
        std::size_t i = firstParen - 1;
        std::vector<std::string> quals;
        while (i >= 2 && decl[i - 1]->text == "::" &&
               decl[i - 2]->kind == Tok::Ident) {
            quals.push_back(decl[i - 2]->text);
            i -= 2;
        }
        std::reverse(quals.begin(), quals.end());
        for (std::size_t q = 0; q < quals.size(); ++q)
            info.klass += (q ? "::" : "") + quals[q];
        info.requiresExprs = parseRequires(decl);
        return info;
    }
    return info;
}

} // namespace

FileModel
buildFileModel(const std::string &path, const TokenStream &ts)
{
    FileModel m;
    m.path = path;
    const auto dot = path.rfind('.');
    const std::string ext = dot == std::string::npos ? "" : path.substr(dot);
    m.isHeader = ext == ".hh" || ext == ".hpp" || ext == ".h";

    for (const Directive &d : ts.directives) {
        if (d.name == "include" || d.name == "include_next") {
            if (!d.arg.empty())
                m.includes.push_back({d.arg, d.systemInclude, d.line});
        } else if (d.name == "define" && !d.arg.empty()) {
            m.exports.insert(d.arg);
        }
    }
    for (const Token &t : ts.tokens)
        if (t.kind == Tok::Ident)
            m.uses.insert(t.text);

    struct Scope
    {
        ScopeInfo::Kind kind;
        std::string name;
        int depth = 0; ///< brace depth *inside* this scope
        bool exportEnumerators = false;
        // Function-only state:
        FuncRecord func;
        struct ActiveLock
        {
            std::string expr;
            int depth;
        };
        std::vector<ActiveLock> locks;
        bool isFunc = false;
    };
    std::vector<Scope> stack;
    int depth = 0;

    auto classChain = [&]() {
        std::string chain;
        for (const Scope &s : stack)
            if (s.kind == ScopeInfo::Class && !s.name.empty())
                chain += (chain.empty() ? "" : "::") + s.name;
        return chain;
    };
    auto atNamespaceScope = [&]() {
        for (const Scope &s : stack)
            if (s.kind != ScopeInfo::Namespace)
                return false;
        return true;
    };
    auto enclosingFunc = [&]() -> Scope * {
        for (auto it = stack.rbegin(); it != stack.rend(); ++it)
            if (it->isFunc)
                return &*it;
        return nullptr;
    };
    auto inFunction = [&]() { return enclosingFunc() != nullptr; };

    const std::vector<Token> &T = ts.tokens;
    TokVec decl;
    // Previous significant token inside an enum body ("{" or ",")
    // marks the next Ident as an enumerator name.
    std::string enumPrev = "{";

    auto exportFromDecl = [&](const TokVec &declIn) {
        if (!atNamespaceScope() || declIn.empty())
            return;
        const TokVec d = stripTemplateHeaders(declIn);
        if (d.empty())
            return;
        const std::string &first = d[0]->text;
        if (first == "static_assert" || first == "namespace" ||
            first == "friend" || first == "public" ||
            first == "private" || first == "protected")
            return;
        if (first == "using") {
            if (d.size() >= 2 && d[1]->text == "namespace")
                return;
            for (std::size_t i = 1; i < d.size(); ++i)
                if (d[i]->text == "=") {
                    if (d[1]->kind == Tok::Ident)
                        m.exports.insert(d[1]->text);
                    return;
                }
            const std::string id = lastIdent(d, 0, d.size());
            if (!id.empty())
                m.exports.insert(id);
            return;
        }
        if (first == "typedef") {
            const std::string id = lastIdent(d, 0, d.size());
            if (!id.empty())
                m.exports.insert(id);
            return;
        }
        // Forward declarations / enum decls.
        for (std::size_t i = 0; i < d.size(); ++i) {
            if (d[i]->kind == Tok::Ident &&
                (isClassKey(d[i]->text) || d[i]->text == "enum")) {
                std::size_t j = i + 1;
                if (j < d.size() && (d[j]->text == "class" ||
                                     d[j]->text == "struct"))
                    ++j;
                const std::string name = parseScopeName(d, j);
                if (!name.empty()) {
                    const auto pos = name.rfind("::");
                    m.exports.insert(
                        pos == std::string::npos
                            ? name
                            : name.substr(pos + 2));
                }
                return;
            }
        }
        // Function declaration: name before the first top-level paren.
        int pd = 0;
        for (std::size_t i = 0; i < d.size(); ++i) {
            if (d[i]->kind != Tok::Punct)
                continue;
            if (d[i]->text == "(") {
                if (pd == 0 && i > 0 && d[i - 1]->kind == Tok::Ident &&
                    !isControlKeyword(d[i - 1]->text)) {
                    m.exports.insert(d[i - 1]->text);
                    return;
                }
                ++pd;
            } else if (d[i]->text == ")") {
                --pd;
            } else if (d[i]->text == "=" && pd == 0) {
                if (i > 0 && d[i - 1]->kind == Tok::Ident)
                    m.exports.insert(d[i - 1]->text);
                return;
            }
        }
        const std::string id = lastIdent(d, 0, d.size());
        if (!id.empty())
            m.exports.insert(id);
    };

    auto recordDeclRequires = [&](const TokVec &declIn) {
        const TokVec d = stripTemplateHeaders(declIn);
        const auto reqs = parseRequires(d);
        if (reqs.empty())
            return;
        int pd = 0;
        for (std::size_t i = 0; i < d.size(); ++i) {
            if (d[i]->kind != Tok::Punct)
                continue;
            if (d[i]->text == "(") {
                if (pd == 0 && i > 0 && d[i - 1]->kind == Tok::Ident) {
                    m.declRequires.push_back(
                        {classChain(), d[i - 1]->text, reqs});
                    return;
                }
                ++pd;
            } else if (d[i]->text == ")") {
                --pd;
            }
        }
    };

    for (std::size_t i = 0; i < T.size(); ++i) {
        const Token &tok = T[i];

        // --- mutex declarations: [support::|std::] Mutex|mutex NAME ;|{
        if (tok.kind == Tok::Ident &&
            (tok.text == "Mutex" || tok.text == "mutex") &&
            i + 2 < T.size() && T[i + 1].kind == Tok::Ident &&
            (T[i + 2].text == ";" || T[i + 2].text == "{") &&
            !(i > 0 && T[i - 1].kind == Tok::Ident &&
              (isClassKey(T[i - 1].text) || T[i - 1].text == "enum"))) {
            bool plausible = tok.text == "Mutex";
            if (!plausible && i >= 2 && T[i - 1].text == "::" &&
                T[i - 2].text == "std")
                plausible = true; // std::mutex
            if (plausible) {
                MutexDecl md;
                md.scope = classChain();
                md.name = T[i + 1].text;
                md.local = inFunction();
                md.line = T[i + 1].line;
                m.mutexDecls.push_back(std::move(md));
            }
        }

        // --- RAII lock acquisitions inside functions
        if (tok.kind == Tok::Ident && isLockClass(tok.text) &&
            inFunction()) {
            TokVec rest;
            for (std::size_t j = i; j < T.size() && rest.size() < 256;
                 ++j)
                rest.push_back(&T[j]);
            std::size_t j = 1; // after the lock class name
            if (j < rest.size() && rest[j]->text == "<")
                j = skipBalanced(rest, j, "<", ">");
            if (j + 1 < rest.size() && rest[j]->kind == Tok::Ident &&
                rest[j + 1]->text == "(") {
                const std::size_t close =
                    skipBalanced(rest, j + 1, "(", ")");
                Scope *fn = enclosingFunc();
                for (const std::string &mx :
                     splitLockArgs(rest, j + 2, close - 1)) {
                    fn->func.acquires.push_back({mx, tok.line});
                    for (const auto &held : fn->locks)
                        fn->func.edges.push_back(
                            {held.expr, mx, tok.line, false});
                    for (const auto &req : fn->func.requiresExprs)
                        fn->func.edges.push_back(
                            {req, mx, tok.line, true});
                    fn->locks.push_back({mx, depth});
                }
            }
        }

        // --- calls made under a lock (for same-class propagation)
        if (tok.kind == Tok::Ident && i + 1 < T.size() &&
            T[i + 1].text == "(" && !isControlKeyword(tok.text) &&
            !isLockClass(tok.text) && inFunction()) {
            Scope *fn = enclosingFunc();
            const bool underLock = !fn->locks.empty() ||
                                   !fn->func.requiresExprs.empty();
            if (underLock) {
                std::string klass;
                bool plain = true;
                if (i > 0 && T[i - 1].kind == Tok::Punct) {
                    const std::string &p = T[i - 1].text;
                    if (p == "::") {
                        if (i >= 2 && T[i - 2].kind == Tok::Ident)
                            klass = T[i - 2].text;
                        else
                            plain = false;
                    } else if (p == "." || p == "->") {
                        plain = i >= 2 && T[i - 2].text == "this";
                        if (plain)
                            klass.clear();
                    }
                }
                if (plain) {
                    FuncRecord::Call call;
                    call.klass = klass;
                    call.name = tok.text;
                    call.line = tok.line;
                    for (const auto &held : fn->locks)
                        call.heldExprs.push_back(held.expr);
                    fn->func.calls.push_back(std::move(call));
                }
            }
        }

        // --- enum body enumerator exports
        if (!stack.empty() && stack.back().kind == ScopeInfo::Enum &&
            stack.back().exportEnumerators) {
            if (tok.kind == Tok::Ident) {
                if (enumPrev == "{" || enumPrev == ",")
                    m.exports.insert(tok.text);
                enumPrev = "";
            } else if (tok.kind == Tok::Punct &&
                       (tok.text == "," || tok.text == "{")) {
                enumPrev = tok.text;
            } else if (tok.kind == Tok::Punct) {
                enumPrev = "";
            }
        }

        // --- statement / scope bookkeeping
        if (tok.kind != Tok::Punct) {
            decl.push_back(&tok);
            continue;
        }
        if (tok.text == "{") {
            ScopeInfo info = classify(decl);
            Scope s;
            s.kind = info.kind;
            s.name = info.name;
            s.depth = ++depth;
            if (info.kind == ScopeInfo::Enum) {
                s.exportEnumerators = atNamespaceScope();
                if (s.exportEnumerators && !info.name.empty())
                    m.exports.insert(info.name);
                enumPrev = "{";
            } else if (info.kind == ScopeInfo::Class) {
                if (atNamespaceScope() && !info.name.empty()) {
                    const auto pos = info.name.rfind("::");
                    m.exports.insert(pos == std::string::npos
                                         ? info.name
                                         : info.name.substr(pos + 2));
                }
            } else if (info.kind == ScopeInfo::Function) {
                if (atNamespaceScope() && info.klass.empty() &&
                    !info.name.empty())
                    m.exports.insert(info.name);
                s.isFunc = true;
                s.func.name = info.name;
                s.func.klass = info.klass.empty() ? classChain()
                                                  : info.klass;
                s.func.requiresExprs = info.requiresExprs;
            }
            stack.push_back(std::move(s));
            decl.clear();
            continue;
        }
        if (tok.text == "}") {
            if (!stack.empty() && stack.back().depth == depth) {
                Scope done = std::move(stack.back());
                stack.pop_back();
                if (done.isFunc &&
                    (!done.func.acquires.empty() ||
                     !done.func.calls.empty() ||
                     !done.func.requiresExprs.empty()))
                    m.funcs.push_back(std::move(done.func));
            }
            if (Scope *fn = enclosingFunc()) {
                // Close RAII locks opened at or inside this depth.
                while (!fn->locks.empty() &&
                       fn->locks.back().depth >= depth)
                    fn->locks.pop_back();
            }
            --depth;
            decl.clear();
            continue;
        }
        if (tok.text == ";") {
            exportFromDecl(decl);
            if (!stack.empty() &&
                stack.back().kind == ScopeInfo::Class)
                recordDeclRequires(decl);
            decl.clear();
            continue;
        }
        decl.push_back(&tok);
    }
    return m;
}

} // namespace coterie::lint
