/**
 * @file
 * coterie_offline — the install-time preprocessing tool.
 *
 * Runs the adaptive cutoff scheme and the reuse-distance derivation for
 * a game on the target device profile and writes the artifact bundle an
 * online client loads at startup (paper §6, "Offline preprocessing").
 *
 *   coterie_offline <game> <output-file>
 *   coterie_offline --inspect <artifact-file>
 *
 * Games: racing ds viking cts fps soccer pool bowling corridor
 */

#include <cstdio>
#include <cstring>
#include <string>

#include "core/dist_thresh.hh"
#include "core/offline_io.hh"
#include "support/stats.hh"
#include "world/gen/generators.hh"

using namespace coterie;
using namespace coterie::core;

namespace {

std::optional<world::gen::GameId>
parseGame(const std::string &name)
{
    for (const auto &info : world::gen::allGames()) {
        std::string lower = info.name;
        for (char &c : lower)
            c = static_cast<char>(std::tolower(c));
        if (lower == name)
            return info.id;
    }
    return std::nullopt;
}

int
inspect(const char *path)
{
    const auto artifacts = loadArtifacts(path);
    if (!artifacts) {
        std::fprintf(stderr, "cannot load artifacts from %s\n", path);
        return 1;
    }
    coterie::RunningStats cutoffs, thresholds;
    int reachable = 0;
    for (std::size_t i = 0; i < artifacts->leaves.size(); ++i) {
        if (!artifacts->leaves[i].reachable)
            continue;
        ++reachable;
        cutoffs.add(artifacts->leaves[i].cutoffRadius);
        thresholds.add(artifacts->distThresholds[i]);
    }
    std::printf("artifact bundle: %s on %s\n", artifacts->game.c_str(),
                artifacts->device.c_str());
    std::printf("  world bounds : %.0f x %.0f m\n",
                artifacts->worldBounds.width(),
                artifacts->worldBounds.height());
    std::printf("  leaf regions : %zu (%d reachable)\n",
                artifacts->leaves.size(), reachable);
    std::printf("  cutoff radius: %.1f .. %.1f m (mean %.1f)\n",
                cutoffs.min(), cutoffs.max(), cutoffs.mean());
    std::printf("  reuse dist   : %.3f .. %.3f m (mean %.3f)\n",
                thresholds.min(), thresholds.max(), thresholds.mean());
    return 0;
}

} // namespace

int
main(int argc, char **argv)
{
    if (argc == 3 && std::strcmp(argv[1], "--inspect") == 0)
        return inspect(argv[2]);
    if (argc != 3) {
        std::fprintf(stderr,
                     "usage: %s <game> <output-file>\n"
                     "       %s --inspect <artifact-file>\n",
                     argv[0], argv[0]);
        return 2;
    }

    const auto game = parseGame(argv[1]);
    if (!game) {
        std::fprintf(stderr, "unknown game '%s'\n", argv[1]);
        return 2;
    }
    const auto &info = world::gen::gameInfo(*game);
    const auto &profile = device::pixel2();

    std::printf("building %s...\n", info.name.c_str());
    const auto world = world::gen::makeWorld(*game, 42);

    std::printf("adaptive cutoff partitioning (K=10)...\n");
    PartitionParams params;
    params.reachable = world::gen::makeReachability(info, world);
    const auto partition = partitionWorld(world, profile, params);
    std::printf("  %zu leaf regions, %llu cutoff calculations, %.2f s\n",
                partition.leaves.size(),
                static_cast<unsigned long long>(
                    partition.cutoffCalculations),
                partition.wallClockSeconds);

    std::printf("calibrating similarity against rendered SSIM...\n");
    std::vector<double> cutoffs;
    for (std::size_t i = 0; i < partition.leaves.size();
         i += std::max<std::size_t>(1, partition.leaves.size() / 4)) {
        if (partition.leaves[i].reachable)
            cutoffs.push_back(
                std::max(1.0, partition.leaves[i].cutoffRadius));
    }
    if (cutoffs.empty())
        cutoffs.push_back(8.0);
    const AnalyticSimilarity similarity(
        calibrateAnalytic(world, cutoffs, 5, 5, params.reachable));

    std::printf("deriving per-region reuse distances...\n");
    const RegionIndex regions(world.bounds(), partition.leaves);
    const auto thresholds =
        deriveDistThresholds(regions, similarity, {});

    OfflineArtifacts artifacts;
    artifacts.game = info.name;
    artifacts.device = profile.name;
    artifacts.worldBounds = world.bounds();
    artifacts.leaves = partition.leaves;
    artifacts.distThresholds = thresholds;
    if (!saveArtifacts(artifacts, argv[2])) {
        std::fprintf(stderr, "cannot write %s\n", argv[2]);
        return 1;
    }
    std::printf("wrote %s\n", argv[2]);
    return 0;
}
