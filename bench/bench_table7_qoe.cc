/**
 * @file
 * Table 7: visual quality (SSIM against a locally rendered ground
 * truth), frame rate, and responsiveness for Thin-client, Multi-Furion
 * and Coterie with 2 players.
 *
 * Visual quality goes through the real frame path: panoramas are
 * rendered, encoded with the block codec, decoded, cropped to the
 * view, and (for Coterie) merged with the locally rendered near BE —
 * including reuse of a cached far-BE frame from a nearby grid point.
 */

#include "bench_util.hh"

#include "image/codec.hh"
#include "image/ssim.hh"
#include "render/renderer.hh"
#include "support/rng.hh"

using namespace coterie;
using namespace coterie::bench;
using namespace coterie::core;

namespace {

constexpr int kPanoW = 512, kPanoH = 256; // angular res matched to view
constexpr int kViewW = 256, kViewH = 144;
constexpr int kSamples = 4;

struct Quality
{
    double thinClient = 0.0;
    double multiFurion = 0.0;
    double coterie = 0.0;
};

Quality
measureQuality(const Session &session)
{
    const auto &world = session.world();
    const render::Renderer renderer(world);
    Rng rng(13);
    Quality acc;
    const auto &points = session.traces().players[0].points;

    for (int s = 0; s < kSamples; ++s) {
        const auto &pose =
            points[points.size() / (kSamples + 1) * (s + 1)];
        render::Camera cam;
        cam.position = world.eyePosition(pose.position);
        cam.yaw = pose.yaw;

        // Ground truth: direct local render of the view.
        const auto truth =
            renderer.renderPerspective(cam, kViewW, kViewH, {});

        // Thin-client: the whole view frame goes through the codec.
        acc.thinClient +=
            image::ssim(truth, image::decode(image::encode(truth)));

        // Multi-Furion: whole-BE panorama through the codec, cropped.
        const auto whole_pano = renderer.renderPanorama(
            cam.position, kPanoW, kPanoH, {});
        const auto mf_view = render::cropPanoramaToView(
            image::decode(image::encode(whole_pano)), cam, kViewW,
            kViewH);
        acc.multiFurion += image::ssim(truth, mf_view);

        // Coterie: near BE rendered locally; far BE panorama possibly
        // reused from a nearby grid point, codec round trip, cropped,
        // merged under the local near layer.
        const double cutoff = session.regions().cutoffAt(pose.position);
        const double thresh =
            session.distThresholds()[session.regions()
                                         .leafAt(pose.position)
                                         .id];
        const geom::Vec2 reused_from =
            pose.position + geom::Vec2::fromAngle(rng.uniform(
                                0.0, 2 * M_PI)) *
                                (thresh * 0.6);
        render::RenderOptions far_opts;
        far_opts.layer = render::DepthLayer::farBe(cutoff);
        const auto far_pano = renderer.renderPanorama(
            world.eyePosition(reused_from), kPanoW, kPanoH, far_opts);
        const auto far_view = render::cropPanoramaToView(
            image::decode(image::encode(far_pano)), cam, kViewW, kViewH);
        render::RenderOptions near_opts;
        near_opts.layer = render::DepthLayer::nearBe(cutoff);
        const auto near_view =
            renderer.renderPerspective(cam, kViewW, kViewH, near_opts);
        acc.coterie +=
            image::ssim(truth, render::Renderer::merge(near_view,
                                                       far_view));
    }
    acc.thinClient /= kSamples;
    acc.multiFurion /= kSamples;
    acc.coterie /= kSamples;
    return acc;
}

} // namespace

int
main()
{
    banner("Table 7 — visual quality / FPS / responsiveness (2 players)",
           "Table 7, Section 7.1");

    std::printf("\n  %-9s %-12s %8s %8s %10s\n", "game", "system",
                "SSIM", "FPS", "resp(ms)");
    for (auto game : world::gen::evaluationGames()) {
        auto session = makeSession(game, 2);
        const Quality q = measureQuality(*session);
        const auto thin = session->runThinClientSystem();
        const auto furion = session->runMultiFurionSystem();
        const auto coterie = session->runCoterieSystem();
        const char *name = session->info().name.c_str();
        std::printf("  %-9s %-12s %8.3f %8.1f %10.1f\n", name,
                    "Thin-client", q.thinClient, thin.avgFps(),
                    thin.players[0].responsivenessMs);
        std::printf("  %-9s %-12s %8.3f %8.1f %10.1f\n", name,
                    "Multi-Furion", q.multiFurion, furion.avgFps(),
                    furion.players[0].responsivenessMs);
        std::printf("  %-9s %-12s %8.3f %8.1f %10.1f\n", name, "Coterie",
                    q.coterie, coterie.avgFps(),
                    coterie.players[0].responsivenessMs);
        std::fflush(stdout);
    }
    std::printf("\nPaper: Coterie SSIM 0.937-0.979 (highest of the "
                "three), 60 FPS, 15.6-15.9 ms;\nMulti-Furion 42-48 FPS, "
                "20-22 ms; Thin-client 15-19 FPS, 41-50 ms.\n");
    return 0;
}
