/**
 * @file
 * Figure 7: CDF of the leaf-region cutoff radiuses produced by the
 * adaptive scheme for all nine games. The paper finds small, tight
 * ranges for most games, a wide 10-100 m spread for DS, and an even
 * 10-180 m spread for Racing Mountain.
 */

#include "bench_util.hh"
#include "csv.hh"

using namespace coterie;
using namespace coterie::bench;
using namespace coterie::core;

int
main()
{
    banner("Figure 7 — CDF of leaf-region cutoff radiuses",
           "Figure 7, Section 4.4");

    CsvWriter csv("fig7_cutoff_cdf", {"game", "cutoff_radius_m"});
    for (const auto &info : world::gen::allGames()) {
        const auto world = world::gen::makeWorld(info.id, 42);
        PartitionParams params;
        params.reachable = world::gen::makeReachability(info, world);
        const auto result =
            partitionWorld(world, device::pixel2(), params);
        SampleSet radii;
        for (const LeafRegion &leaf : result.leaves) {
            if (leaf.reachable) {
                radii.add(leaf.cutoffRadius);
                csv.row(info.name, leaf.cutoffRadius);
            }
        }
        printCdf(info.name.c_str(), radii);
        std::fflush(stdout);
    }
    std::printf("\nPaper: most games stay in a small range; DS spreads "
                "10-100 m, Racing 10-180 m.\n");
    return 0;
}
