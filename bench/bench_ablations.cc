/**
 * @file
 * Ablation studies beyond the paper's figures, for the design choices
 * DESIGN.md calls out:
 *   (a) cache replacement policy: LRU vs FLF vs Random;
 *   (b) adaptive vs single global cutoff radius;
 *   (c) prefetch lookahead depth;
 *   (d) codec quality vs frame size and fidelity.
 */

#include <algorithm>

#include "bench_util.hh"

#include "core/client.hh"
#include "image/codec.hh"
#include "image/ssim.hh"
#include "render/renderer.hh"
#include "support/rng.hh"

using namespace coterie;
using namespace coterie::bench;
using namespace coterie::core;

namespace {

void
ablationReplacementPolicy(const Session &session)
{
    std::printf("\n(a) cache replacement policy (Viking, 2P, small "
                "cache)\n");
    for (auto policy : {ReplacementPolicy::Lru, ReplacementPolicy::Flf,
                        ReplacementPolicy::Random}) {
        SystemConfig config = session.systemConfig();
        // Shrink the cache so replacement actually matters.
        config.profile.cacheBudgetBytes = 24ull * 1024 * 1024;
        SplitVariant variant = SplitVariant::coterie(true);
        variant.policy = policy;
        const SystemResult result = runSplitSystem(
            config, variant, session.distThresholds(), "Coterie");
        const char *name = policy == ReplacementPolicy::Lru   ? "LRU"
                           : policy == ReplacementPolicy::Flf ? "FLF"
                                                              : "Random";
        std::printf("    %-7s fps=%5.1f  hit=%5.1f%%  evictions=%llu\n",
                    name, result.avgFps(),
                    100.0 * result.avgCacheHitRatio(),
                    static_cast<unsigned long long>(
                        result.players[0].cacheStats.evictions));
        std::fflush(stdout);
    }
}

void
ablationGlobalCutoff(const Session &session)
{
    std::printf("\n(b) adaptive quadtree vs single global cutoff "
                "(Viking)\n");
    // Global cutoff = the world-wide minimum (the only safe choice).
    double global_cutoff = 1e9;
    for (const LeafRegion &leaf : session.partition().leaves)
        global_cutoff = std::min(global_cutoff, leaf.cutoffRadius);

    // Adaptive mean reuse distance vs global.
    const AnalyticSimilarity model(session.similarityParams());
    double adaptive_mean = 0.0;
    int n = 0;
    for (const LeafRegion &leaf : session.partition().leaves) {
        if (!leaf.reachable)
            continue;
        adaptive_mean += model.maxDisplacement(leaf.cutoffRadius, 0.9);
        ++n;
    }
    adaptive_mean /= std::max(1, n);
    const double global_reuse =
        model.maxDisplacement(global_cutoff, 0.9);
    std::printf("    global min cutoff %.1f m -> reuse distance %.3f m\n",
                global_cutoff, global_reuse);
    std::printf("    adaptive cutoffs      -> mean reuse distance "
                "%.3f m (%.1fx better)\n",
                adaptive_mean, adaptive_mean / global_reuse);
}

void
ablationLookahead(const Session &session)
{
    std::printf("\n(c) prefetch lookahead depth (Viking, 2P)\n");
    for (int steps : {1, 2, 4}) {
        SplitVariant variant = SplitVariant::coterie(true);
        variant.prefetch.lookaheadSteps = steps;
        const SystemResult result =
            runSplitSystem(session.systemConfig(), variant,
                           session.distThresholds(), "Coterie");
        std::printf("    lookahead=%d  fps=%5.1f  be=%5.1f Mbps  "
                    "hit=%5.1f%%\n",
                    steps, result.avgFps(), result.players[0].beMbps,
                    100.0 * result.avgCacheHitRatio());
        std::fflush(stdout);
    }
}

void
ablationCodecQuality(const Session &session)
{
    std::printf("\n(d) codec quality vs size and fidelity (far-BE "
                "panorama)\n");
    const render::Renderer renderer(session.world());
    const auto &pose = session.traces().players[0].points.front();
    render::RenderOptions opts;
    opts.layer = render::DepthLayer::farBe(
        session.regions().cutoffAt(pose.position));
    const auto pano = renderer.renderPanorama(
        session.world().eyePosition(pose.position), 384, 192, opts);
    for (int quality : {20, 40, 60, 80, 95}) {
        image::CodecParams params;
        params.quality = quality;
        const auto encoded = image::encode(pano, params);
        const double fidelity =
            image::ssim(pano, image::decode(encoded));
        std::printf("    q=%2d  %7.1f KB  ssim=%.3f\n", quality,
                    encoded.sizeBytes() / 1024.0, fidelity);
        std::fflush(stdout);
    }
}

} // namespace

int
main()
{
    banner("Ablations — replacement policy, cutoff scheme, lookahead, "
           "codec quality",
           "DESIGN.md section 4 (beyond the paper)");
    auto session = makeSession(world::gen::GameId::Viking, 2);
    ablationReplacementPolicy(*session);
    ablationGlobalCutoff(*session);
    ablationLookahead(*session);
    ablationCodecQuality(*session);
    return 0;
}
