/**
 * @file
 * Render hot-path benchmark. Three axes:
 *  - render path A/B: the seed per-pixel renderer (SeedScalar) vs the
 *    SIMD scalar path vs the packetized row-batched pipeline (Batched)
 *    on the production SAH tree — the frames are bit-identical, only
 *    the time moves;
 *  - BVH build A/B: median split vs binned SAH (both on the batched
 *    path), plus the raw raycast seed-traversal comparison;
 *  - the coterie-wide far-BE render de-dup scenario (8 clients,
 *    pano-cache hit ratio and renders per frame).
 * Each world also records a per-stage panorama breakdown (direction
 * gen / raycast / terrain / shade / composite) from the batched
 * pipeline's stage timers.
 *
 * Flags:
 *   --smoke   tiny resolutions / single rep (CI perf-smoke job)
 *   --check   exit non-zero if a tracked ratio regresses or the
 *             batched and seed frames differ
 *   --stages  re-run the stage breakdown with full reps and print a
 *             per-world table
 *
 * Writes results/BENCH_render.json (and ./BENCH_render.json).
 */

#include <chrono>
#include <cstdio>
#include <cstring>
#include <string>
#include <vector>

#include "bench_util.hh"
#include "core/partitioner.hh"
#include "core/server.hh"
#include "obs/metrics.hh"
#include "render/renderer.hh"
#include "support/parallel.hh"
#include "world/gen/generators.hh"

namespace {

using namespace coterie;
using world::gen::GameId;

double
seconds(const std::function<void()> &fn)
{
    const auto start = std::chrono::steady_clock::now();
    fn();
    return std::chrono::duration<double>(std::chrono::steady_clock::now() -
                                         start)
        .count();
}

struct AbTimes
{
    double panoMs = 0.0; ///< per panorama frame
    double perspMs = 0.0; ///< per perspective frame
    double panoRaysPerSec = 0.0;
};

/** Time panorama + perspective frames with the world's current BVH
 *  through the given render path. */
AbTimes
timeRenders(const world::VirtualWorld &world, int panoW, int panoH,
            int perspW, int perspH, int reps, render::RenderPath path)
{
    const render::Renderer renderer(world);
    const geom::Vec2 center = world.bounds().center();
    const geom::Vec3 eye = world.eyePosition(center);
    render::Camera camera;
    camera.position = eye;
    render::RenderOptions opts;
    opts.path = path;

    // Warm the pool and touch the tree once before timing.
    volatile std::uint8_t sink =
        renderer.renderPanorama(eye, 64, 32, opts).pixels()[0].r;
    (void)sink;

    AbTimes out;
    const double pano_s = seconds([&] {
        for (int i = 0; i < reps; ++i) {
            const auto frame =
                renderer.renderPanorama(eye, panoW, panoH, opts);
            if (frame.empty())
                std::abort(); // keep the optimizer honest
        }
    });
    const double persp_s = seconds([&] {
        for (int i = 0; i < reps; ++i) {
            const auto frame =
                renderer.renderPerspective(camera, perspW, perspH, opts);
            if (frame.empty())
                std::abort();
        }
    });
    out.panoMs = pano_s * 1000.0 / reps;
    out.perspMs = persp_s * 1000.0 / reps;
    out.panoRaysPerSec =
        static_cast<double>(panoW) * panoH * reps / pano_s;
    return out;
}

/** Stage timer metric names, in pipeline order. */
constexpr const char *kStageNames[] = {
    "render.stage.dirs_ms", "render.stage.raycast_ms",
    "render.stage.terrain_ms", "render.stage.shade_ms",
    "render.stage.sky_ms"};
constexpr const char *kStageLabels[] = {"dirs", "raycast", "terrain",
                                        "shade", "composite"};
constexpr int kStageCount = 5;

/**
 * Per-stage panorama cost (ms/frame) via the batched pipeline's stage
 * timers: render @p reps frames with timers on, diff the registry
 * timer sums. The instrumentation is two clock reads per row per
 * stage — well under timing noise at bench resolutions.
 */
void
stageBreakdown(const world::VirtualWorld &world, int panoW, int panoH,
               int reps, double out[kStageCount])
{
    const render::Renderer renderer(world);
    const geom::Vec3 eye = world.eyePosition(world.bounds().center());
    render::RenderOptions opts;
    opts.stageTimers = true;
    obs::MetricsRegistry &registry = obs::MetricsRegistry::global();
    double before[kStageCount];
    for (int i = 0; i < kStageCount; ++i)
        before[i] = registry.timer(kStageNames[i]).snapshot().stats.sum();
    for (int r = 0; r < reps; ++r) {
        const auto frame = renderer.renderPanorama(eye, panoW, panoH, opts);
        if (frame.empty())
            std::abort();
    }
    for (int i = 0; i < kStageCount; ++i)
        out[i] = (registry.timer(kStageNames[i]).snapshot().stats.sum() -
                  before[i]) /
                 reps;
}

/**
 * The load-bearing equivalence behind every A/B above: the batched
 * packet pipeline and the seed per-pixel renderer must produce
 * byte-identical frames (whole scene and both clip layers).
 */
bool
pathsAgree(const world::VirtualWorld &world)
{
    const render::Renderer renderer(world);
    const geom::Vec3 eye = world.eyePosition(world.bounds().center());
    for (int layer = 0; layer < 3; ++layer) {
        render::RenderOptions opts;
        if (layer == 1)
            opts.layer = render::DepthLayer::nearBe(25.0);
        else if (layer == 2)
            opts.layer = render::DepthLayer::farBe(25.0);
        opts.path = render::RenderPath::SeedScalar;
        const auto seed = renderer.renderPanorama(eye, 96, 48, opts);
        opts.path = render::RenderPath::Batched;
        const auto packet = renderer.renderPanorama(eye, 96, 48, opts);
        if (!(seed.pixels() == packet.pixels()))
            return false;
    }
    return true;
}

/**
 * Cast the full panorama ray set through the BVH alone (no shading, no
 * terrain, serial): isolates the hot path the overhaul targets. With
 * @p seedBaseline the rays go through the preserved pre-overhaul
 * traversal — Median build + seedBaseline reproduces the seed renderer.
 */
double
raycastSeconds(const world::VirtualWorld &world, geom::Vec3 eye, int w,
               int h, int reps, bool seedBaseline)
{
    const world::Bvh &bvh = world.bvh();
    double sink = 0.0;
    const double s = seconds([&] {
        for (int r = 0; r < reps; ++r) {
            for (int y = 0; y < h; ++y) {
                const double v = (y + 0.5) / h;
                for (int x = 0; x < w; ++x) {
                    const double u = (x + 0.5) / w;
                    geom::Ray ray;
                    ray.origin = eye;
                    ray.dir = render::panoramaDirection(u, v);
                    const geom::Hit hit =
                        seedBaseline ? bvh.closestHitSeedBaseline(ray)
                                     : bvh.closestHit(ray);
                    if (hit.valid())
                        sink += hit.t;
                }
            }
        }
    });
    if (sink < 0.0)
        std::abort(); // keep the optimizer honest
    return s;
}

/**
 * 8-client far-BE scenario: four position pairs, each pair inside one
 * quantization cell, fanned out over the pool — measures how many
 * actual renders the pano cache performs and its hit ratio.
 */
obs::Json
panoCacheScenario(const world::VirtualWorld &world, int width, int height)
{
    const world::GridMap grid =
        world::gen::makeGrid(world::gen::gameInfo(GameId::Viking));
    const auto partition = core::partitionWorld(world, device::pixel2(), {});
    const core::RegionIndex regions(world.bounds(), partition.leaves);
    const core::FrameStore frames(world, grid, regions);

    const double thresh = 8.0;
    const double pitch = std::max(thresh, grid.spacing());
    const geom::Rect &b = world.bounds();
    std::vector<geom::Vec2> clients;
    for (int pair = 0; pair < 4; ++pair) {
        const double cx = b.lo.x + (2.0 * pair + 2.25) * pitch;
        const double cy = b.lo.y + 2.25 * pitch;
        clients.push_back({cx, cy});
        clients.push_back({cx + 0.4 * pitch, cy + 0.4 * pitch});
    }

    const double wall_s = seconds([&] {
        support::parallelFor(
            0, static_cast<std::int64_t>(clients.size()), 1,
            [&](std::int64_t s, std::int64_t e) {
                for (std::int64_t i = s; i < e; ++i)
                    frames.farBePanorama(
                        clients[static_cast<std::size_t>(i)], thresh,
                        width, height);
            },
            4);
    });

    const core::PanoCacheStats stats = frames.panoCacheStats();
    const double served =
        static_cast<double>(stats.hits + stats.misses + stats.inflightJoins);
    obs::Json out = obs::Json::object();
    out.set("clients",
            obs::Json(static_cast<std::uint64_t>(clients.size())));
    out.set("renders", obs::Json(stats.misses));
    out.set("hits", obs::Json(stats.hits));
    out.set("inflight_joins", obs::Json(stats.inflightJoins));
    out.set("hit_ratio",
            obs::Json(served > 0.0
                          ? (served - stats.misses) / served
                          : 0.0));
    out.set("renders_per_frame",
            obs::Json(static_cast<double>(stats.misses) /
                      static_cast<double>(clients.size())));
    out.set("wall_s", obs::Json(wall_s));
    std::printf("  pano-cache: %zu clients -> %llu renders "
                "(%.0f%% cache-served), %.2f renders/frame\n",
                clients.size(),
                static_cast<unsigned long long>(stats.misses),
                100.0 * (served - stats.misses) / served,
                static_cast<double>(stats.misses) / clients.size());
    return out;
}

} // namespace

int
main(int argc, char **argv)
{
    bool smoke = false;
    bool check = false;
    bool stages_mode = false;
    for (int i = 1; i < argc; ++i) {
        if (std::strcmp(argv[i], "--smoke") == 0)
            smoke = true;
        else if (std::strcmp(argv[i], "--check") == 0)
            check = true;
        else if (std::strcmp(argv[i], "--stages") == 0)
            stages_mode = true;
    }

    bench::banner("Render hot path: packet pipeline vs seed renderer + "
                  "BVH A/B + far-BE de-dup",
                  "the renderer behind Tables 6-8");

    const int pano_w = smoke ? 160 : 512;
    const int pano_h = smoke ? 80 : 256;
    const int persp_w = smoke ? 128 : 320;
    const int persp_h = smoke ? 96 : 240;
    const int reps = smoke ? 1 : 3;

    const struct
    {
        GameId id;
        const char *name;
    } games[] = {{GameId::Racing, "racing"},
                 {GameId::CTS, "cts"},
                 {GameId::Viking, "viking"}};

    obs::Json worlds = obs::Json::object();
    double total_median_ms = 0.0;
    double total_sah_ms = 0.0;
    double total_seed_ms = 0.0;
    double total_seed_ray_s = 0.0;
    double total_new_ray_s = 0.0;
    bool parity_ok = true;
    for (const auto &game : games) {
        world::VirtualWorld world = world::gen::makeWorld(game.id, 42);
        std::printf("\n  %s (%zu objects)\n", game.name,
                    world.objects().size());

        const geom::Vec3 eye = world.eyePosition(world.bounds().center());
        world.rebuildIndex(world::BvhBuildPolicy::Median);
        const AbTimes median =
            timeRenders(world, pano_w, pano_h, persp_w, persp_h, reps,
                        render::RenderPath::Batched);
        // Seed-equivalent hot path: median tree + pre-overhaul traversal.
        const double seed_ray_s = raycastSeconds(world, eye, pano_w,
                                                 pano_h, reps, true);
        world.rebuildIndex(world::BvhBuildPolicy::BinnedSah);
        // Path A/B on the production SAH tree: the frames are
        // byte-identical across paths (checked below), only time moves.
        const AbTimes seed_path =
            timeRenders(world, pano_w, pano_h, persp_w, persp_h, reps,
                        render::RenderPath::SeedScalar);
        const AbTimes scalar_path =
            timeRenders(world, pano_w, pano_h, persp_w, persp_h, reps,
                        render::RenderPath::Scalar);
        const AbTimes sah =
            timeRenders(world, pano_w, pano_h, persp_w, persp_h, reps,
                        render::RenderPath::Batched);
        const double new_ray_s = raycastSeconds(world, eye, pano_w,
                                                pano_h, reps, false);
        const double ray_speedup = seed_ray_s / new_ray_s;
        const double pano_speedup_vs_seed = seed_path.panoMs / sah.panoMs;
        double stage_ms[kStageCount];
        stageBreakdown(world, pano_w, pano_h, stages_mode ? reps : 1,
                       stage_ms);
        const bool agree = pathsAgree(world);
        parity_ok = parity_ok && agree;

        std::printf("    pano   %7.2f ms (seed)  %7.2f ms (scalar)  "
                    "%7.2f ms (packet)  %.2fx vs seed\n",
                    seed_path.panoMs, scalar_path.panoMs, sah.panoMs,
                    pano_speedup_vs_seed);
        std::printf("    persp  %7.2f ms (seed)  %7.2f ms (packet)  "
                    "%.2fx vs seed\n",
                    seed_path.perspMs, sah.perspMs,
                    seed_path.perspMs / sah.perspMs);
        std::printf("    pano   %7.2f ms (median tree)  %7.2f ms (sah)  "
                    "%.2fx,  rays/s %.2fM\n",
                    median.panoMs, sah.panoMs, median.panoMs / sah.panoMs,
                    sah.panoRaysPerSec / 1e6);
        std::printf("    pano raycast vs seed traversal: %7.2f ms -> "
                    "%7.2f ms  %.2fx\n",
                    seed_ray_s * 1000.0 / reps, new_ray_s * 1000.0 / reps,
                    ray_speedup);
        std::printf("    stages ");
        for (int i = 0; i < kStageCount; ++i)
            std::printf(" %s %.1f ms%s", kStageLabels[i], stage_ms[i],
                        i + 1 < kStageCount ? "," : "\n");
        std::printf("    frames: packet %s seed\n",
                    agree ? "==" : "DIFFER FROM");

        obs::Json w = obs::Json::object();
        w.set("objects", obs::Json(static_cast<std::uint64_t>(
                             world.objects().size())));
        w.set("pano_ms_median", obs::Json(median.panoMs));
        w.set("pano_ms_sah", obs::Json(sah.panoMs));
        w.set("pano_speedup", obs::Json(median.panoMs / sah.panoMs));
        w.set("pano_ms_seed", obs::Json(seed_path.panoMs));
        w.set("pano_ms_scalar", obs::Json(scalar_path.panoMs));
        w.set("pano_ms_packet", obs::Json(sah.panoMs));
        w.set("pano_speedup_vs_seed", obs::Json(pano_speedup_vs_seed));
        w.set("persp_ms_median", obs::Json(median.perspMs));
        w.set("persp_ms_sah", obs::Json(sah.perspMs));
        w.set("persp_ms_seed", obs::Json(seed_path.perspMs));
        w.set("persp_speedup", obs::Json(median.perspMs / sah.perspMs));
        w.set("persp_speedup_vs_seed",
              obs::Json(seed_path.perspMs / sah.perspMs));
        w.set("pano_rays_per_s_median", obs::Json(median.panoRaysPerSec));
        w.set("pano_rays_per_s_sah", obs::Json(sah.panoRaysPerSec));
        w.set("pano_raycast_ms_seed",
              obs::Json(seed_ray_s * 1000.0 / reps));
        w.set("pano_raycast_ms_new", obs::Json(new_ray_s * 1000.0 / reps));
        w.set("pano_raycast_speedup_vs_seed", obs::Json(ray_speedup));
        obs::Json stages = obs::Json::object();
        for (int i = 0; i < kStageCount; ++i)
            stages.set(kStageLabels[i], obs::Json(stage_ms[i]));
        w.set("pano_stage_ms", std::move(stages));
        w.set("packet_matches_seed", obs::Json(agree));
        worlds.set(game.name, std::move(w));
        total_median_ms += median.panoMs;
        total_sah_ms += sah.panoMs;
        total_seed_ms += seed_path.panoMs;
        total_seed_ray_s += seed_ray_s;
        total_new_ray_s += new_ray_s;
    }

    std::printf("\n  8-client far-BE de-dup (viking)\n");
    world::VirtualWorld viking = world::gen::makeWorld(GameId::Viking, 42);
    obs::Json cache = panoCacheScenario(viking, smoke ? 64 : 192,
                                        smoke ? 32 : 96);

    obs::Json doc = obs::Json::object();
    doc.set("smoke", obs::Json(smoke));
    doc.set("pano_w", obs::Json(static_cast<std::uint64_t>(pano_w)));
    doc.set("pano_h", obs::Json(static_cast<std::uint64_t>(pano_h)));
    doc.set("reps", obs::Json(static_cast<std::uint64_t>(reps)));
    doc.set("worlds", std::move(worlds));
    doc.set("pano_cache", std::move(cache));
    doc.set("total_pano_ms_median", obs::Json(total_median_ms));
    doc.set("total_pano_ms_sah", obs::Json(total_sah_ms));
    doc.set("total_pano_ms_seed", obs::Json(total_seed_ms));
    doc.set("total_pano_ms_packet", obs::Json(total_sah_ms));
    doc.set("total_pano_speedup",
            obs::Json(total_median_ms / total_sah_ms));
    doc.set("total_pano_speedup_vs_seed",
            obs::Json(total_seed_ms / total_sah_ms));
    const double total_ray_speedup = total_seed_ray_s / total_new_ray_s;
    doc.set("total_pano_raycast_speedup_vs_seed",
            obs::Json(total_ray_speedup));
    doc.set("packet_matches_seed", obs::Json(parity_ok));
    bench::writeBenchJson("render", doc);

    std::printf("\n  total pano: %.2f ms (seed path) vs %.2f ms (packet) "
                "-> %.2fx frame; %.2fx raycast vs seed traversal\n",
                total_seed_ms, total_sah_ms, total_seed_ms / total_sah_ms,
                total_ray_speedup);

    if (check) {
        // The parity and raycast checks are deterministic — solid CI
        // signals. Frame times run on the pool, so allow 10% noise.
        if (!parity_ok) {
            std::printf("  CHECK FAILED: packet pipeline frames differ "
                        "from the seed renderer\n");
            return 1;
        }
        if (total_ray_speedup < 1.0) {
            std::printf("  CHECK FAILED: overhauled traversal slower "
                        "than seed baseline\n");
            return 1;
        }
        if (total_sah_ms > 1.10 * total_median_ms) {
            std::printf("  CHECK FAILED: SAH frame time regressed above "
                        "median split\n");
            return 1;
        }
        if (total_sah_ms > 1.10 * total_seed_ms) {
            std::printf("  CHECK FAILED: packet pipeline slower than "
                        "the seed render path\n");
            return 1;
        }
    }
    return 0;
}
