/**
 * @file
 * Render hot-path benchmark: median-split vs binned-SAH BVH A/B over
 * worlds of different object densities (panorama + perspective
 * ms/frame and rays/s), plus the coterie-wide far-BE render de-dup
 * scenario (8 clients, pano-cache hit ratio and renders per frame).
 *
 * Flags:
 *   --smoke   tiny resolutions / single rep (CI perf-smoke job)
 *   --check   exit non-zero if SAH panorama time regresses above the
 *             median-split baseline (summed over worlds)
 *
 * Writes results/BENCH_render.json (and ./BENCH_render.json).
 */

#include <chrono>
#include <cstdio>
#include <cstring>
#include <string>
#include <vector>

#include "bench_util.hh"
#include "core/partitioner.hh"
#include "core/server.hh"
#include "render/renderer.hh"
#include "support/parallel.hh"
#include "world/gen/generators.hh"

namespace {

using namespace coterie;
using world::gen::GameId;

double
seconds(const std::function<void()> &fn)
{
    const auto start = std::chrono::steady_clock::now();
    fn();
    return std::chrono::duration<double>(std::chrono::steady_clock::now() -
                                         start)
        .count();
}

struct AbTimes
{
    double panoMs = 0.0; ///< per panorama frame
    double perspMs = 0.0; ///< per perspective frame
    double panoRaysPerSec = 0.0;
};

/** Time panorama + perspective frames with the world's current BVH. */
AbTimes
timeRenders(const world::VirtualWorld &world, int panoW, int panoH,
            int perspW, int perspH, int reps)
{
    const render::Renderer renderer(world);
    const geom::Vec2 center = world.bounds().center();
    const geom::Vec3 eye = world.eyePosition(center);
    render::Camera camera;
    camera.position = eye;

    // Warm the pool and touch the tree once before timing.
    volatile std::uint8_t sink =
        renderer.renderPanorama(eye, 64, 32).pixels()[0].r;
    (void)sink;

    AbTimes out;
    const double pano_s = seconds([&] {
        for (int i = 0; i < reps; ++i) {
            const auto frame = renderer.renderPanorama(eye, panoW, panoH);
            if (frame.empty())
                std::abort(); // keep the optimizer honest
        }
    });
    const double persp_s = seconds([&] {
        for (int i = 0; i < reps; ++i) {
            const auto frame =
                renderer.renderPerspective(camera, perspW, perspH);
            if (frame.empty())
                std::abort();
        }
    });
    out.panoMs = pano_s * 1000.0 / reps;
    out.perspMs = persp_s * 1000.0 / reps;
    out.panoRaysPerSec =
        static_cast<double>(panoW) * panoH * reps / pano_s;
    return out;
}

/**
 * Cast the full panorama ray set through the BVH alone (no shading, no
 * terrain, serial): isolates the hot path the overhaul targets. With
 * @p seedBaseline the rays go through the preserved pre-overhaul
 * traversal — Median build + seedBaseline reproduces the seed renderer.
 */
double
raycastSeconds(const world::VirtualWorld &world, geom::Vec3 eye, int w,
               int h, int reps, bool seedBaseline)
{
    const world::Bvh &bvh = world.bvh();
    double sink = 0.0;
    const double s = seconds([&] {
        for (int r = 0; r < reps; ++r) {
            for (int y = 0; y < h; ++y) {
                const double v = (y + 0.5) / h;
                for (int x = 0; x < w; ++x) {
                    const double u = (x + 0.5) / w;
                    geom::Ray ray;
                    ray.origin = eye;
                    ray.dir = render::panoramaDirection(u, v);
                    const geom::Hit hit =
                        seedBaseline ? bvh.closestHitSeedBaseline(ray)
                                     : bvh.closestHit(ray);
                    if (hit.valid())
                        sink += hit.t;
                }
            }
        }
    });
    if (sink < 0.0)
        std::abort(); // keep the optimizer honest
    return s;
}

/**
 * 8-client far-BE scenario: four position pairs, each pair inside one
 * quantization cell, fanned out over the pool — measures how many
 * actual renders the pano cache performs and its hit ratio.
 */
obs::Json
panoCacheScenario(const world::VirtualWorld &world, int width, int height)
{
    const world::GridMap grid =
        world::gen::makeGrid(world::gen::gameInfo(GameId::Viking));
    const auto partition = core::partitionWorld(world, device::pixel2(), {});
    const core::RegionIndex regions(world.bounds(), partition.leaves);
    const core::FrameStore frames(world, grid, regions);

    const double thresh = 8.0;
    const double pitch = std::max(thresh, grid.spacing());
    const geom::Rect &b = world.bounds();
    std::vector<geom::Vec2> clients;
    for (int pair = 0; pair < 4; ++pair) {
        const double cx = b.lo.x + (2.0 * pair + 2.25) * pitch;
        const double cy = b.lo.y + 2.25 * pitch;
        clients.push_back({cx, cy});
        clients.push_back({cx + 0.4 * pitch, cy + 0.4 * pitch});
    }

    const double wall_s = seconds([&] {
        support::parallelFor(
            0, static_cast<std::int64_t>(clients.size()), 1,
            [&](std::int64_t s, std::int64_t e) {
                for (std::int64_t i = s; i < e; ++i)
                    frames.farBePanorama(
                        clients[static_cast<std::size_t>(i)], thresh,
                        width, height);
            },
            4);
    });

    const core::PanoCacheStats stats = frames.panoCacheStats();
    const double served =
        static_cast<double>(stats.hits + stats.misses + stats.inflightJoins);
    obs::Json out = obs::Json::object();
    out.set("clients",
            obs::Json(static_cast<std::uint64_t>(clients.size())));
    out.set("renders", obs::Json(stats.misses));
    out.set("hits", obs::Json(stats.hits));
    out.set("inflight_joins", obs::Json(stats.inflightJoins));
    out.set("hit_ratio",
            obs::Json(served > 0.0
                          ? (served - stats.misses) / served
                          : 0.0));
    out.set("renders_per_frame",
            obs::Json(static_cast<double>(stats.misses) /
                      static_cast<double>(clients.size())));
    out.set("wall_s", obs::Json(wall_s));
    std::printf("  pano-cache: %zu clients -> %llu renders "
                "(%.0f%% cache-served), %.2f renders/frame\n",
                clients.size(),
                static_cast<unsigned long long>(stats.misses),
                100.0 * (served - stats.misses) / served,
                static_cast<double>(stats.misses) / clients.size());
    return out;
}

} // namespace

int
main(int argc, char **argv)
{
    bool smoke = false;
    bool check = false;
    for (int i = 1; i < argc; ++i) {
        if (std::strcmp(argv[i], "--smoke") == 0)
            smoke = true;
        else if (std::strcmp(argv[i], "--check") == 0)
            check = true;
    }

    bench::banner("Render hot path: SAH vs median BVH + far-BE de-dup",
                  "the renderer behind Tables 6-8");

    const int pano_w = smoke ? 160 : 512;
    const int pano_h = smoke ? 80 : 256;
    const int persp_w = smoke ? 128 : 320;
    const int persp_h = smoke ? 96 : 240;
    const int reps = smoke ? 1 : 3;

    const struct
    {
        GameId id;
        const char *name;
    } games[] = {{GameId::Racing, "racing"},
                 {GameId::CTS, "cts"},
                 {GameId::Viking, "viking"}};

    obs::Json worlds = obs::Json::object();
    double total_median_ms = 0.0;
    double total_sah_ms = 0.0;
    double total_seed_ray_s = 0.0;
    double total_new_ray_s = 0.0;
    for (const auto &game : games) {
        world::VirtualWorld world = world::gen::makeWorld(game.id, 42);
        std::printf("\n  %s (%zu objects)\n", game.name,
                    world.objects().size());

        const geom::Vec3 eye = world.eyePosition(world.bounds().center());
        world.rebuildIndex(world::BvhBuildPolicy::Median);
        const AbTimes median = timeRenders(world, pano_w, pano_h,
                                           persp_w, persp_h, reps);
        // Seed-equivalent hot path: median tree + pre-overhaul traversal.
        const double seed_ray_s = raycastSeconds(world, eye, pano_w,
                                                 pano_h, reps, true);
        world.rebuildIndex(world::BvhBuildPolicy::BinnedSah);
        const AbTimes sah = timeRenders(world, pano_w, pano_h, persp_w,
                                        persp_h, reps);
        const double new_ray_s = raycastSeconds(world, eye, pano_w,
                                                pano_h, reps, false);
        const double ray_speedup = seed_ray_s / new_ray_s;

        std::printf("    pano   %7.2f ms (median)  %7.2f ms (sah)  "
                    "%.2fx\n",
                    median.panoMs, sah.panoMs,
                    median.panoMs / sah.panoMs);
        std::printf("    persp  %7.2f ms (median)  %7.2f ms (sah)  "
                    "%.2fx\n",
                    median.perspMs, sah.perspMs,
                    median.perspMs / sah.perspMs);
        std::printf("    rays/s %.2fM (median)  %.2fM (sah)\n",
                    median.panoRaysPerSec / 1e6,
                    sah.panoRaysPerSec / 1e6);
        std::printf("    pano raycast vs seed traversal: %7.2f ms -> "
                    "%7.2f ms  %.2fx\n",
                    seed_ray_s * 1000.0 / reps, new_ray_s * 1000.0 / reps,
                    ray_speedup);

        obs::Json w = obs::Json::object();
        w.set("objects", obs::Json(static_cast<std::uint64_t>(
                             world.objects().size())));
        w.set("pano_ms_median", obs::Json(median.panoMs));
        w.set("pano_ms_sah", obs::Json(sah.panoMs));
        w.set("pano_speedup", obs::Json(median.panoMs / sah.panoMs));
        w.set("persp_ms_median", obs::Json(median.perspMs));
        w.set("persp_ms_sah", obs::Json(sah.perspMs));
        w.set("persp_speedup", obs::Json(median.perspMs / sah.perspMs));
        w.set("pano_rays_per_s_median", obs::Json(median.panoRaysPerSec));
        w.set("pano_rays_per_s_sah", obs::Json(sah.panoRaysPerSec));
        w.set("pano_raycast_ms_seed",
              obs::Json(seed_ray_s * 1000.0 / reps));
        w.set("pano_raycast_ms_new", obs::Json(new_ray_s * 1000.0 / reps));
        w.set("pano_raycast_speedup_vs_seed", obs::Json(ray_speedup));
        worlds.set(game.name, std::move(w));
        total_median_ms += median.panoMs;
        total_sah_ms += sah.panoMs;
        total_seed_ray_s += seed_ray_s;
        total_new_ray_s += new_ray_s;
    }

    std::printf("\n  8-client far-BE de-dup (viking)\n");
    world::VirtualWorld viking = world::gen::makeWorld(GameId::Viking, 42);
    obs::Json cache = panoCacheScenario(viking, smoke ? 64 : 192,
                                        smoke ? 32 : 96);

    obs::Json doc = obs::Json::object();
    doc.set("smoke", obs::Json(smoke));
    doc.set("pano_w", obs::Json(static_cast<std::uint64_t>(pano_w)));
    doc.set("pano_h", obs::Json(static_cast<std::uint64_t>(pano_h)));
    doc.set("reps", obs::Json(static_cast<std::uint64_t>(reps)));
    doc.set("worlds", std::move(worlds));
    doc.set("pano_cache", std::move(cache));
    doc.set("total_pano_ms_median", obs::Json(total_median_ms));
    doc.set("total_pano_ms_sah", obs::Json(total_sah_ms));
    doc.set("total_pano_speedup",
            obs::Json(total_median_ms / total_sah_ms));
    const double total_ray_speedup = total_seed_ray_s / total_new_ray_s;
    doc.set("total_pano_raycast_speedup_vs_seed",
            obs::Json(total_ray_speedup));
    bench::writeBenchJson("render", doc);

    std::printf("\n  total pano: %.2f ms (median) vs %.2f ms (sah) -> "
                "%.2fx frame, %.2fx raycast vs seed traversal\n",
                total_median_ms, total_sah_ms,
                total_median_ms / total_sah_ms, total_ray_speedup);

    if (check) {
        // The raycast A/B is deterministic and serial — a solid CI
        // signal. Frame times run on the pool, so allow 10% noise.
        if (total_ray_speedup < 1.0) {
            std::printf("  CHECK FAILED: overhauled traversal slower "
                        "than seed baseline\n");
            return 1;
        }
        if (total_sah_ms > 1.10 * total_median_ms) {
            std::printf("  CHECK FAILED: SAH frame time regressed above "
                        "median split\n");
            return 1;
        }
    }
    return 0;
}
