/**
 * @file
 * Figure 3: the "near-object" effect demonstration. Two frames from
 * nearby Viking Village locations have a low SSIM; after removing the
 * objects near the viewpoints (rendering only the far BE), the same
 * pair scores high. Also writes the four frames as PPM images.
 *
 * Paper example: 0.67 before, 0.96 after removing near objects.
 */

#include <sys/stat.h>

#include "bench_util.hh"

#include "core/similarity.hh"
#include "render/renderer.hh"

using namespace coterie;
using namespace coterie::bench;
using namespace coterie::core;

int
main()
{
    banner("Figure 3 — the near-object effect", "Figure 3, Section 4.2");

    const auto world =
        world::gen::makeWorld(world::gen::GameId::Viking, 42);
    const RenderedSimilarity rendered(world, 384, 192);

    const geom::Vec2 a = world.bounds().center() + geom::Vec2{9.0, 7.0};
    const geom::Vec2 b = a + geom::Vec2{0.08, 0.0};
    const double cutoff = 8.0;

    const double before = rendered.farBeSsim(a, b, 0.0);
    const double after = rendered.farBeSsim(a, b, cutoff);

    compare("SSIM before removing near objects", 0.67, before);
    compare("SSIM after removing near objects", 0.96, after);
    std::printf("\n  delta (after - before): %+0.3f (paper: +0.29)\n",
                after - before);

    // Dump the frames for visual inspection (into results/, like the
    // figure CSVs — keep the repo root free of artifacts).
    ::mkdir("results", 0755);
    rendered.renderWholeBe(a).writePpm("results/fig3_whole_a.ppm");
    rendered.renderWholeBe(b).writePpm("results/fig3_whole_b.ppm");
    rendered.renderFarBe(a, cutoff).writePpm("results/fig3_far_a.ppm");
    rendered.renderFarBe(b, cutoff).writePpm("results/fig3_far_b.ppm");
    std::printf("  frames written to results/fig3_{whole,far}_{a,b}.ppm\n");
    return 0;
}
