/**
 * @file
 * Chaos bench: QoE versus fault severity, with and without the client
 * resilience layer.
 *
 * A reference fault plan (loss burst + latency spike + bandwidth
 * collapse + outage + server stall) is swept through severities 0..1
 * via FaultPlan::scaled. For each severity the same session runs twice
 * — bare client vs ResilientFetcher + graceful degradation — and the
 * QoE aggregates (total frozen time, degraded frames, FPS) are
 * reported. Severity 0 is the strict no-op point: both runs reproduce
 * the clean Coterie system bit for bit.
 *
 * `--smoke` runs the endpoints of the sweep only (CI).
 */

#include <cstring>
#include <vector>

#include "bench_util.hh"
#include "net/resilience.hh"
#include "sim/faults.hh"

using namespace coterie;
using namespace coterie::bench;
using namespace coterie::core;

namespace {

/** The reference chaos script (severity 1) over a 30 s session. */
sim::FaultPlan
referencePlan()
{
    sim::FaultPlan plan;
    plan.lossBurst(5000.0, 15000.0, 0.4)
        .latencySpike(5000.0, 15000.0, 6.0)
        .bandwidthCollapse(8000.0, 18000.0, 0.05)
        .outage(20000.0, 21000.0)
        .serverStall(24000.0, 24500.0);
    return plan;
}

/** QoE aggregates of one run, summed across players. */
struct Qoe
{
    double stallMs = 0.0;
    std::uint64_t stalls = 0;
    std::uint64_t degraded = 0;
    std::uint64_t retries = 0;
    std::uint64_t timeouts = 0;
    std::uint64_t giveups = 0;
    double avgFps = 0.0;
    double hitRatio = 0.0;

    /**
     * QoE loss in display-time terms: frozen milliseconds plus one
     * tick of degraded (stale-panorama) display per degraded frame.
     * This is the quantity that grows monotonically with severity —
     * resilience trades frozen time for degraded time, it cannot
     * conjure the missing megaframes.
     */
    double qoeLossMs() const
    {
        return stallMs + (1000.0 / 60.0) * static_cast<double>(degraded);
    }
};

Qoe
aggregate(const SystemResult &result)
{
    Qoe q;
    for (const PlayerMetrics &m : result.players) {
        q.stallMs += m.stallMs;
        q.stalls += m.stalls;
        q.degraded += m.framesDegraded;
        q.retries += m.netRetries;
        q.timeouts += m.netTimeouts;
        q.giveups += m.fetchGiveups;
    }
    q.avgFps = result.avgFps();
    q.hitRatio = result.avgCacheHitRatio();
    return q;
}

obs::Json
toJson(const Qoe &q)
{
    obs::Json row = obs::Json::object();
    row.set("stall_ms", obs::Json(q.stallMs));
    row.set("stalls", obs::Json(static_cast<double>(q.stalls)));
    row.set("degraded_frames",
            obs::Json(static_cast<double>(q.degraded)));
    row.set("retries", obs::Json(static_cast<double>(q.retries)));
    row.set("timeouts", obs::Json(static_cast<double>(q.timeouts)));
    row.set("giveups", obs::Json(static_cast<double>(q.giveups)));
    row.set("avg_fps", obs::Json(q.avgFps));
    row.set("cache_hit_ratio", obs::Json(q.hitRatio));
    row.set("qoe_loss_ms", obs::Json(q.qoeLossMs()));
    return row;
}

} // namespace

int
main(int argc, char **argv)
{
    const bool smoke =
        argc > 1 && std::strcmp(argv[1], "--smoke") == 0;
    banner("Chaos — QoE vs fault severity, resilience on/off",
           "robustness harness; see DESIGN.md §9");

    const std::vector<double> severities =
        smoke ? std::vector<double>{0.0, 1.0}
              : std::vector<double>{0.0, 0.25, 0.5, 0.75, 1.0};

    auto session = makeSession(world::gen::GameId::Viking, 2, 30.0);
    const sim::FaultPlan reference = referencePlan();
    net::ResilienceParams off; // bare client
    net::ResilienceParams on;
    on.enabled = true;

    std::printf("\n  %-8s | %-21s | %-40s\n", "", "bare client",
                "resilient client");
    std::printf("  %-8s | %10s %10s | %10s %10s %7s %7s %10s\n",
                "severity", "stall_ms", "fps", "stall_ms", "fps", "degr",
                "retry", "qoe_loss");

    obs::Json points = obs::Json::array();
    for (const double severity : severities) {
        const sim::FaultPlan plan = reference.scaled(severity);
        const Qoe bare =
            aggregate(session->runCoterieChaos(plan, off));
        const Qoe resilient =
            aggregate(session->runCoterieChaos(plan, on));
        std::printf("  %8.2f | %10.1f %10.2f | %10.1f %10.2f %7llu "
                    "%7llu %10.1f\n",
                    severity, bare.stallMs, bare.avgFps,
                    resilient.stallMs, resilient.avgFps,
                    static_cast<unsigned long long>(resilient.degraded),
                    static_cast<unsigned long long>(resilient.retries),
                    resilient.qoeLossMs());
        std::fflush(stdout);

        obs::Json point = obs::Json::object();
        point.set("severity", obs::Json(severity));
        point.set("bare", toJson(bare));
        point.set("resilient", toJson(resilient));
        points.push(std::move(point));
    }

    obs::Json doc = obs::Json::object();
    doc.set("game", obs::Json(std::string("viking")));
    doc.set("players", obs::Json(2));
    doc.set("duration_s", obs::Json(30.0));
    doc.set("smoke", obs::Json(smoke));
    doc.set("points", std::move(points));
    writeBenchJson("chaos", doc);
    return 0;
}
