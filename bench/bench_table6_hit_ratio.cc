/**
 * @file
 * Table 6: average frame-cache hit ratio across players for the three
 * evaluation games under the full Coterie system, and the resulting
 * prefetch-frequency reduction (paper: 80.8/82.3/88.4%% -> 5.2/5.6/8.6x).
 */

#include "bench_util.hh"

using namespace coterie;
using namespace coterie::bench;
using namespace coterie::core;

int
main()
{
    banner("Table 6 — Coterie frame-cache hit ratio (4 players)",
           "Table 6, Section 7");

    const double paper_ratio[] = {0.808, 0.823, 0.884};
    std::printf("\n  %-9s | hit ratio (paper/ours) | prefetch reduction "
                "(paper/ours)\n",
                "game");
    obs::Json games = obs::Json::object();
    int i = 0;
    for (auto game : world::gen::evaluationGames()) {
        auto session = makeSession(game, 4, 60.0);
        const SystemResult result = session->runCoterieSystem();
        const double ratio = result.avgCacheHitRatio();
        const double reduction = ratio < 1.0 ? 1.0 / (1.0 - ratio) : 0.0;
        const double paper_red = 1.0 / (1.0 - paper_ratio[i]);
        std::printf("  %-9s |      %5.1f%% / %5.1f%%    |        "
                    "%4.1fx / %4.1fx\n",
                    session->info().name.c_str(), 100.0 * paper_ratio[i],
                    100.0 * ratio, paper_red, reduction);
        std::fflush(stdout);
        obs::Json row = obs::Json::object();
        row.set("hit_ratio", obs::Json(ratio));
        row.set("hit_ratio_paper", obs::Json(paper_ratio[i]));
        row.set("prefetch_reduction", obs::Json(reduction));
        row.set("prefetch_reduction_paper", obs::Json(paper_red));
        games.set(session->info().name, std::move(row));
        ++i;
    }
    obs::Json doc = obs::Json::object();
    doc.set("players", obs::Json(4));
    doc.set("duration_s", obs::Json(60.0));
    doc.set("games", std::move(games));
    writeBenchJson("table6_hit_ratio", doc);
    return 0;
}
