/**
 * @file
 * Figure 5: SSIM between two adjacent far-BE frames as a function of
 * the near/far cutoff radius, at four randomly sampled Viking Village
 * locations. The paper observes a quick, monotone rise from 0.63-0.83
 * at cutoff 0 to above 0.9 by ~4 m.
 */

#include "bench_util.hh"

#include "core/similarity.hh"
#include "support/rng.hh"

using namespace coterie;
using namespace coterie::bench;
using namespace coterie::core;

int
main()
{
    banner("Figure 5 — adjacent far-BE SSIM vs cutoff radius",
           "Figure 5, Section 4.3");

    const auto world =
        world::gen::makeWorld(world::gen::GameId::Viking, 42);
    const RenderedSimilarity rendered(world, 256, 128);
    Rng rng(31);

    const double cutoffs[] = {0.0, 0.5, 1.0, 2.0, 4.0, 8.0, 16.0};
    std::printf("\n  cutoff(m):");
    for (double c : cutoffs)
        std::printf(" %6.1f", c);
    std::printf("\n");

    // Adjacent grid points: 1/32 m apart (Viking's grid pitch).
    const double step = 1.0 / 32.0;
    for (int loc = 0; loc < 4; ++loc) {
        // Sample inside the village band where near objects exist.
        const geom::Vec2 a =
            world.bounds().center() +
            geom::Vec2{rng.uniform(-40.0, 40.0), rng.uniform(-30.0, 30.0)};
        std::printf("  loc %d     ", loc + 1);
        double prev = 0.0;
        bool monotone = true;
        for (double c : cutoffs) {
            const double s =
                rendered.farBeSsim(a, a + geom::Vec2{step, 0.0}, c);
            std::printf(" %6.3f", s);
            monotone &= s >= prev - 0.03;
            prev = s;
        }
        std::printf("  %s\n", monotone ? "(monotone)" : "(!)");
        std::fflush(stdout);
    }
    std::printf("\nPaper: 0.63-0.83 at cutoff 0, rising monotonically "
                "above 0.9 by ~4 m.\n");
    return 0;
}
