/**
 * @file
 * Tiny CSV writer for the figure benches: each bench that reproduces a
 * plotted figure also drops a plot-ready CSV into ./results/, so the
 * curves can be regenerated with any plotting tool.
 */

#pragma once

#include <cstdio>
#include <initializer_list>
#include <string>
#include <sys/stat.h>
#include <vector>

namespace coterie::bench {

/** Column-oriented CSV file writer; creates ./results/ on demand. */
class CsvWriter
{
  public:
    /** Opens results/<name>.csv and writes the header row. */
    CsvWriter(const std::string &name,
              std::initializer_list<const char *> columns)
    {
        ::mkdir("results", 0755);
        path_ = "results/" + name + ".csv";
        file_ = std::fopen(path_.c_str(), "w");
        if (!file_)
            return;
        bool first = true;
        for (const char *column : columns) {
            std::fprintf(file_, "%s%s", first ? "" : ",", column);
            first = false;
        }
        std::fprintf(file_, "\n");
    }

    ~CsvWriter()
    {
        if (file_) {
            std::fclose(file_);
            std::printf("  [csv] wrote %s\n", path_.c_str());
        }
    }

    CsvWriter(const CsvWriter &) = delete;
    CsvWriter &operator=(const CsvWriter &) = delete;

    /** Append one row; strings and numbers mix freely. */
    template <typename... Fields>
    void
    row(Fields &&...fields)
    {
        if (!file_)
            return;
        bool first = true;
        (writeField(first, std::forward<Fields>(fields)), ...);
        std::fprintf(file_, "\n");
    }

    bool ok() const { return file_ != nullptr; }

  private:
    void
    writeField(bool &first, double value)
    {
        std::fprintf(file_, "%s%.6g", first ? "" : ",", value);
        first = false;
    }
    void
    writeField(bool &first, int value)
    {
        std::fprintf(file_, "%s%d", first ? "" : ",", value);
        first = false;
    }
    void
    writeField(bool &first, const char *value)
    {
        std::fprintf(file_, "%s%s", first ? "" : ",", value);
        first = false;
    }
    void
    writeField(bool &first, const std::string &value)
    {
        writeField(first, value.c_str());
    }

    std::string path_;
    std::FILE *file_ = nullptr;
};

} // namespace coterie::bench

