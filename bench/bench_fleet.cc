/**
 * @file
 * Fleet bench: N independent Coterie sessions multiplexed over one
 * SessionManager (shared DES, shared thread pool, shared world-keyed
 * panorama render cache).
 *
 * Two legs:
 *
 *  - **Sweep** sessions x players: per point it reports megaframe
 *    deliveries, actual panorama renders (cache misses),
 *    renders/frame, shared-cache hit ratio, p99 frame latency, and
 *    the wall time of the whole fleet run. Sessions play distinct
 *    trajectories over one world, so the hit ratio is the honest
 *    cross-session sharing win, not self-similarity.
 *
 *  - **Overload**: a mixed fleet (healthy sessions + hopeless ones on
 *    a collapsed cacheless link) under the load governor, showing the
 *    degradation ladder is monotone — shed and degrade transitions
 *    strictly precede every eviction, healthy sessions are untouched.
 *
 * `--smoke` shrinks the sweep for CI; `--check` exits non-zero if a
 * robustness invariant breaks (sharing absent, ladder out of order, a
 * healthy session harmed). bench_history gates the hit-ratio
 * trajectory against results/BENCH_fleet.json.
 */

#include <chrono>
#include <cmath>
#include <cstring>
#include <memory>
#include <string>
#include <vector>

#include "bench_util.hh"
#include "core/fleet.hh"

using namespace coterie;
using namespace coterie::bench;
using namespace coterie::core;

namespace {

struct SweepPoint
{
    int sessions = 0;
    int players = 0;
    std::uint64_t deliveries = 0;
    std::uint64_t renders = 0; // shared-cache misses
    double hitRatio = 0.0;
    double rendersPerFrame = 0.0;
    double p99LatencyMs = 0.0;
    double avgFps = 0.0;
    double wallS = 0.0;
    std::uint64_t faults = 0;
    std::uint64_t evictions = 0;      // governor session evictions
    std::uint64_t cacheEvictions = 0; // shared-cache LRU evictions
    // Sim-engine throughput (DESIGN.md §12): executed DES events, the
    // rate they retire at, and wall seconds per simulated second.
    std::uint64_t events = 0;
    double eventsPerSec = 0.0;
    double wallPerSimS = 0.0;
};

/** One fleet run: N sessions with distinct trajectories, one world. */
SweepPoint
runSweepPoint(int sessions, int players, double durationS, int renderW,
              int renderH, bool serialEngine = false)
{
    FleetCapacity cap;
    cap.maxSessions = sessions;
    cap.maxClients = sessions * players;
    SessionManager mgr(cap, {}, 256ull << 20, serialEngine);

    // One preprocessed base per point, wired to the manager's shared
    // cache — the multi-tenant deployment shape. Similarity
    // calibration is skipped: the fleet path under test never reads
    // the thresholds it would tune.
    SessionParams sp;
    sp.players = players;
    sp.durationS = durationS;
    sp.seed = 42;
    sp.calibrateSimilarity = false;
    sp.frameStore.sharedPanoCache = mgr.panoCache();
    const auto base = Session::create(world::gen::GameId::Viking, sp);

    // Popular-route model: each trajectory seed is played by (up to)
    // two sessions, so half the fleet revisits content another session
    // also renders — the cross-session analogue of the paper's
    // frame-similarity premise. A single session gets a unique seed.
    const int routes = (sessions + 1) / 2;
    for (int i = 0; i < sessions; ++i) {
        FleetSessionSpec spec;
        spec.base = base.get();
        spec.traceSeed = 1000 + static_cast<std::uint64_t>(i % routes);
        spec.recordFrameLog = true;
        spec.renderOnFetch = true;
        spec.renderWidth = renderW;
        spec.renderHeight = renderH;
        mgr.submit(spec);
    }

    const auto t0 = std::chrono::steady_clock::now();
    const FleetResult fleet = mgr.run();
    const auto t1 = std::chrono::steady_clock::now();

    SweepPoint point;
    point.sessions = sessions;
    point.players = players;
    point.wallS = std::chrono::duration<double>(t1 - t0).count();
    point.faults = fleet.faults;
    point.evictions = fleet.evictions;
    point.cacheEvictions = fleet.panoCache.evictions;
    point.events = mgr.queue().executedEvents();
    point.eventsPerSec = point.wallS > 0.0
                             ? static_cast<double>(point.events) /
                                   point.wallS
                             : 0.0;
    point.wallPerSimS = fleet.horizonMs > 0.0
                            ? point.wallS / (fleet.horizonMs / 1000.0)
                            : 0.0;

    SampleSet latencies;
    double fps = 0.0;
    for (const FleetSessionReport &s : fleet.sessions) {
        point.deliveries += s.fleetRenders;
        fps += s.result.avgFps();
        for (const auto &log : s.result.frameLogs)
            for (const FrameLogEntry &e : log)
                latencies.add(e.latencyMs);
    }
    point.avgFps = fps / static_cast<double>(fleet.sessions.size());
    point.p99LatencyMs = latencies.empty() ? 0.0 : latencies.percentile(99);
    point.renders = fleet.panoCache.misses;
    const double served = static_cast<double>(
        fleet.panoCache.hits + fleet.panoCache.misses +
        fleet.panoCache.inflightJoins);
    point.hitRatio =
        served > 0.0 ? (served - static_cast<double>(fleet.panoCache.misses)) /
                           served
                     : 0.0;
    point.rendersPerFrame =
        point.deliveries > 0
            ? static_cast<double>(point.renders) /
                  static_cast<double>(point.deliveries)
            : 0.0;
    return point;
}

obs::Json
toJson(const SweepPoint &p)
{
    obs::Json row = obs::Json::object();
    row.set("sessions", obs::Json(static_cast<std::uint64_t>(p.sessions)));
    row.set("players", obs::Json(static_cast<std::uint64_t>(p.players)));
    row.set("deliveries", obs::Json(p.deliveries));
    row.set("renders", obs::Json(p.renders));
    row.set("cache_evictions", obs::Json(p.cacheEvictions));
    row.set("hit_ratio", obs::Json(p.hitRatio));
    row.set("renders_per_frame", obs::Json(p.rendersPerFrame));
    row.set("p99_frame_latency_ms", obs::Json(p.p99LatencyMs));
    row.set("avg_fps", obs::Json(p.avgFps));
    row.set("wall_s", obs::Json(p.wallS));
    row.set("faults", obs::Json(p.faults));
    row.set("evictions", obs::Json(p.evictions));
    row.set("events", obs::Json(p.events));
    row.set("events_per_s", obs::Json(p.eventsPerSec));
    row.set("wall_per_sim_s", obs::Json(p.wallPerSimS));
    return row;
}

/** The governed overload fleet: healthy + hopeless sessions. */
struct OverloadOutcome
{
    std::uint64_t shed = 0;
    std::uint64_t degrade = 0;
    std::uint64_t evictions = 0;
    int healthy = 0;
    int healthyCompleted = 0;
    int hopeless = 0;
    double firstEvictionMs = -1.0;
};

OverloadOutcome
runOverload(double durationS)
{
    GovernorParams gov;
    gov.enabled = true;
    gov.tickMs = 250.0;
    gov.shedMissRate = 0.05;
    gov.degradeMissRate = 0.15;
    gov.evictMissRate = 0.50;
    gov.evictStrikes = 3;
    gov.recoverMissRate = 0.01;
    SessionManager mgr({}, gov);

    SessionParams sp;
    sp.players = 2;
    sp.durationS = durationS;
    sp.seed = 42;
    sp.calibrateSimilarity = false;
    sp.frameStore.sharedPanoCache = mgr.panoCache();
    const auto base = Session::create(world::gen::GameId::Viking, sp);

    OverloadOutcome out;
    out.healthy = 4;
    out.hopeless = 2;
    for (int i = 0; i < out.healthy; ++i) {
        FleetSessionSpec spec;
        spec.base = base.get();
        spec.traceSeed = 2000 + static_cast<std::uint64_t>(i);
        mgr.submit(spec);
    }
    for (int i = 0; i < out.hopeless; ++i) {
        FleetSessionSpec spec;
        spec.base = base.get();
        spec.traceSeed = 3000 + static_cast<std::uint64_t>(i);
        spec.withCache = false;
        spec.faults.bandwidthCollapse(1000.0, durationS * 1000.0, 0.01);
        mgr.submit(spec);
    }

    const FleetResult fleet = mgr.run();
    out.shed = fleet.shedTransitions;
    out.degrade = fleet.degradeTransitions;
    out.evictions = fleet.evictions;
    for (int i = 0; i < out.healthy; ++i)
        if (fleet.sessions[static_cast<std::size_t>(i)].phase ==
            SessionPhase::Completed)
            ++out.healthyCompleted;
    for (const FleetSessionReport &s : fleet.sessions)
        if (s.phase == SessionPhase::Evicted &&
            (out.firstEvictionMs < 0.0 ||
             s.finishedAtMs < out.firstEvictionMs))
            out.firstEvictionMs = s.finishedAtMs;
    return out;
}

} // namespace

int
main(int argc, char **argv)
{
    bool smoke = false;
    bool check = false;
    for (int i = 1; i < argc; ++i) {
        if (std::strcmp(argv[i], "--smoke") == 0)
            smoke = true;
        else if (std::strcmp(argv[i], "--check") == 0)
            check = true;
    }

    banner("Fleet — N coteries on one manager: sharing, overload, "
           "isolation", "multi-session robustness; DESIGN.md §11");

    const std::vector<int> sessionCounts =
        smoke ? std::vector<int>{1, 8} : std::vector<int>{1, 8, 32, 128};
    const std::vector<int> playerCounts =
        smoke ? std::vector<int>{2} : std::vector<int>{2, 4};
    const double durationS = smoke ? 5.0 : 8.0;
    const int renderW = smoke ? 48 : 64;
    const int renderH = smoke ? 24 : 32;

    std::printf("\n  %8s %7s | %9s %8s %9s %8s %10s %8s %7s\n",
                "sessions", "players", "frames", "renders", "rend/frm",
                "hit", "p99_lat_ms", "fps", "wall_s");

    bool ok = true;
    obs::Json points = obs::Json::object();
    for (const int players : playerCounts) {
        for (const int sessions : sessionCounts) {
            const SweepPoint p = runSweepPoint(sessions, players,
                                               durationS, renderW,
                                               renderH);
            std::printf("  %8d %7d | %9llu %8llu %9.3f %7.1f%% %10.2f "
                        "%8.2f %7.2f\n",
                        p.sessions, p.players,
                        static_cast<unsigned long long>(p.deliveries),
                        static_cast<unsigned long long>(p.renders),
                        p.rendersPerFrame, 100.0 * p.hitRatio,
                        p.p99LatencyMs, p.avgFps, p.wallS);
            std::fflush(stdout);

            char key[32];
            std::snprintf(key, sizeof key, "s%d_p%d", sessions, players);
            obs::Json row = toJson(p);

            // A/B the engines on the largest leg: the same fleet once
            // more through the pre-lane serial event loop. Frame
            // deliveries are bit-identical (the determinism contract).
            // Shared-cache miss counts are too — unless the cache
            // evicted: the engines order cache accesses differently
            // (inline per delivery vs barrier-batched), so once LRU
            // pressure kicks in their eviction histories legitimately
            // drift, and the miss tally gets a 0.5% band instead.
            if (sessions == sessionCounts.back() &&
                players == playerCounts.back()) {
                const SweepPoint serial =
                    runSweepPoint(sessions, players, durationS, renderW,
                                  renderH, /*serialEngine=*/true);
                const double speedup =
                    p.wallS > 0.0 ? serial.wallS / p.wallS : 0.0;
                std::printf("  %8s %7s | serial-engine wall %.2fs, "
                            "lane-engine wall %.2fs, sim speedup "
                            "%.2fx\n",
                            "", "", serial.wallS, p.wallS, speedup);
                row.set("serial_engine_wall_s",
                        obs::Json(serial.wallS));
                row.set("engine_speedup", obs::Json(speedup));
                const bool evicted =
                    p.cacheEvictions != 0 || serial.cacheEvictions != 0;
                const double renderDrift =
                    serial.renders > 0
                        ? std::abs(static_cast<double>(p.renders) -
                                   static_cast<double>(serial.renders)) /
                              static_cast<double>(serial.renders)
                        : 0.0;
                if (serial.deliveries != p.deliveries ||
                    (evicted ? renderDrift > 0.005
                             : serial.renders != p.renders)) {
                    std::printf("  CHECK FAILED: serial and lane "
                                "engines disagree on %s (deliveries "
                                "%llu vs %llu, renders %llu vs %llu, "
                                "cache evictions %llu vs %llu)\n",
                                key,
                                static_cast<unsigned long long>(
                                    serial.deliveries),
                                static_cast<unsigned long long>(
                                    p.deliveries),
                                static_cast<unsigned long long>(
                                    serial.renders),
                                static_cast<unsigned long long>(
                                    p.renders),
                                static_cast<unsigned long long>(
                                    serial.cacheEvictions),
                                static_cast<unsigned long long>(
                                    p.cacheEvictions));
                    ok = false;
                }
            }
            points.set(key, std::move(row));

            // Ungoverned fleets never evict or fault, deliveries flow,
            // and sibling trajectories over one world must share: past
            // one session the cache serves a real fraction of renders.
            if (p.faults != 0 || p.evictions != 0) {
                std::printf("  CHECK FAILED: %s saw %llu faults / %llu "
                            "evictions in an ungoverned fleet\n",
                            key,
                            static_cast<unsigned long long>(p.faults),
                            static_cast<unsigned long long>(p.evictions));
                ok = false;
            }
            if (p.deliveries == 0 || p.p99LatencyMs <= 0.0) {
                std::printf("  CHECK FAILED: %s made no progress\n", key);
                ok = false;
            }
            if (sessions > 1 &&
                (p.hitRatio <= 0.0 || p.rendersPerFrame >= 1.0)) {
                std::printf("  CHECK FAILED: %s shows no cross-session "
                            "sharing (hit %.3f, renders/frame %.3f)\n",
                            key, p.hitRatio, p.rendersPerFrame);
                ok = false;
            }
        }
    }

    std::printf("\n  overload: 4 healthy + 2 hopeless sessions, "
                "governor on\n");
    const OverloadOutcome over = runOverload(durationS);
    std::printf("    shed %llu -> degrade %llu -> evict %llu "
                "(first at %.0f ms); healthy completed %d/%d\n",
                static_cast<unsigned long long>(over.shed),
                static_cast<unsigned long long>(over.degrade),
                static_cast<unsigned long long>(over.evictions),
                over.firstEvictionMs, over.healthyCompleted,
                over.healthy);

    // Monotone ladder: every evicted session entered shed and degrade
    // first (entries into levels >= 1 / >= 2 are counted per session),
    // both hopeless sessions go, and no healthy session is harmed.
    if (over.evictions != static_cast<std::uint64_t>(over.hopeless)) {
        std::printf("  CHECK FAILED: expected %d evictions, saw %llu\n",
                    over.hopeless,
                    static_cast<unsigned long long>(over.evictions));
        ok = false;
    }
    if (over.shed < over.evictions || over.degrade < over.evictions) {
        std::printf("  CHECK FAILED: eviction without preceding "
                    "shed/degrade (shed %llu, degrade %llu)\n",
                    static_cast<unsigned long long>(over.shed),
                    static_cast<unsigned long long>(over.degrade));
        ok = false;
    }
    if (over.healthyCompleted != over.healthy) {
        std::printf("  CHECK FAILED: only %d/%d healthy sessions "
                    "completed under overload\n",
                    over.healthyCompleted, over.healthy);
        ok = false;
    }

    obs::Json overload = obs::Json::object();
    overload.set("healthy", obs::Json(static_cast<std::uint64_t>(
                                over.healthy)));
    overload.set("hopeless", obs::Json(static_cast<std::uint64_t>(
                                 over.hopeless)));
    overload.set("shed_transitions", obs::Json(over.shed));
    overload.set("degrade_transitions", obs::Json(over.degrade));
    overload.set("evictions", obs::Json(over.evictions));
    overload.set("first_eviction_ms", obs::Json(over.firstEvictionMs));
    overload.set("healthy_completed",
                 obs::Json(static_cast<std::uint64_t>(
                     over.healthyCompleted)));

    obs::Json doc = obs::Json::object();
    doc.set("game", obs::Json(std::string("viking")));
    doc.set("duration_s", obs::Json(durationS));
    doc.set("smoke", obs::Json(smoke));
    doc.set("points", std::move(points));
    doc.set("overload", std::move(overload));
    writeBenchJson("fleet", doc);

    if (check && !ok)
        return 1;
    std::printf("\n  fleet checks: %s\n", ok ? "ok" : "FAILED");
    return 0;
}
