/**
 * @file
 * Figure 6: fraction of trace locations whose region cutoff violates
 * Constraint 1, as a function of the per-region sample count K, for
 * Viking Village, Racing and CTS. The paper picks K = 10, at which the
 * violation rate drops below 0.25%.
 */

#include "bench_util.hh"

#include "trace/trajectory.hh"

using namespace coterie;
using namespace coterie::bench;
using namespace coterie::core;
using world::gen::GameId;

int
main()
{
    banner("Figure 6 — Constraint-1 violation rate vs K",
           "Figure 6, Section 4.3");

    const int ks[] = {2, 4, 6, 8, 10, 14};
    std::printf("\n  %-8s", "K:");
    for (int k : ks)
        std::printf(" %7d", k);
    std::printf("\n");

    for (GameId game : world::gen::evaluationGames()) {
        const auto &info = world::gen::gameInfo(game);
        const auto world = world::gen::makeWorld(game, 42);
        const auto reachable = world::gen::makeReachability(info, world);

        // Trace locations, as in the paper's §4.1 experiments.
        trace::TrajectoryParams tp;
        tp.players = 1;
        tp.durationS = 60.0;
        tp.seed = 5;
        const auto session = trace::generateTrace(info, world, tp);
        std::vector<geom::Vec2> locations;
        for (std::size_t i = 0; i < session.players[0].points.size();
             i += 20)
            locations.push_back(session.players[0].points[i].position);

        std::printf("  %-8s", info.name.c_str());
        for (int k : ks) {
            PartitionParams params;
            params.samplesPerRegion = k;
            params.reachable = reachable;
            const auto partition =
                partitionWorld(world, device::pixel2(), params);
            const RegionIndex index(world.bounds(), partition.leaves);
            const double rate = constraintViolationRate(
                world, device::pixel2(), index, locations,
                params.constraint);
            std::printf(" %6.2f%%", 100.0 * rate);
            std::fflush(stdout);
        }
        std::printf("\n");
    }
    std::printf("\nPaper: at K = 10 the violation rate is below 0.25%% "
                "for all three games.\n");
    return 0;
}
