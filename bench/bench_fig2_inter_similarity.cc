/**
 * @file
 * Figure 2: best-case inter-player BE frame similarity for two players,
 * before and after near/far decoupling. For each of player 1's sampled
 * frames, the most similar frame among player 2's nearby frames is
 * found (rendered SSIM) and the CDF of these best-case values reported.
 *
 * Paper: before decoupling ~0%% of frames exceed SSIM 0.9; after,
 * 55-100%% (outdoor) but only 2-33%% (indoor).
 */

#include <algorithm>

#include "bench_util.hh"

#include "core/similarity.hh"
#include "trace/trajectory.hh"

using namespace coterie;
using namespace coterie::bench;
using namespace coterie::core;
using world::gen::GameId;

namespace {

constexpr int kFramesPerGame = 24;
constexpr int kCandidates = 4; // nearest player-2 frames tried per frame

} // namespace

int
main()
{
    banner("Figure 2 — best-case inter-player similarity (rendered SSIM)",
           "Figure 2(a)/(b), Section 4.1/4.5");

    std::printf("\n  %-9s | %%frames best-case SSIM>0.9:  %-9s %-9s\n",
                "game", "whole BE", "far BE");
    for (const auto &info : world::gen::allGames()) {
        const auto world = world::gen::makeWorld(info.id, 42);
        PartitionParams pp;
        pp.reachable = world::gen::makeReachability(info, world);
        const auto partition =
            partitionWorld(world, device::pixel2(), pp);
        const RegionIndex regions(world.bounds(), partition.leaves);
        const RenderedSimilarity rendered(world, 160, 80);

        trace::TrajectoryParams tp;
        tp.players = 2;
        tp.durationS = 60.0;
        tp.seed = 9;
        const auto session = trace::generateTrace(info, world, tp);
        const auto &p1 = session.players[0].points;
        const auto &p2 = session.players[1].points;

        SampleSet whole, far;
        const std::size_t stride =
            std::max<std::size_t>(1, p1.size() / kFramesPerGame);
        for (std::size_t i = 0; i < p1.size() && whole.count() <
                                kFramesPerGame;
             i += stride) {
            const geom::Vec2 a = p1[i].position;
            // Best-case: try the spatially closest player-2 frames.
            std::vector<std::pair<double, std::size_t>> by_dist;
            for (std::size_t j = 0; j < p2.size(); j += 8)
                by_dist.emplace_back(a.distance(p2[j].position), j);
            std::partial_sort(by_dist.begin(),
                              by_dist.begin() +
                                  std::min<std::size_t>(kCandidates,
                                                        by_dist.size()),
                              by_dist.end());
            double best_whole = 0.0, best_far = 0.0;
            const double cutoff = regions.cutoffAt(a);
            for (int c = 0; c < kCandidates &&
                            c < static_cast<int>(by_dist.size());
                 ++c) {
                const geom::Vec2 b = p2[by_dist[c].second].position;
                best_whole = std::max(best_whole,
                                      rendered.farBeSsim(a, b, 0.0));
                best_far = std::max(best_far,
                                    rendered.farBeSsim(a, b, cutoff));
            }
            whole.add(best_whole);
            far.add(best_far);
        }
        std::printf("  %-9s |                          %8.1f%% %8.1f%%\n",
                    info.name.c_str(),
                    100.0 * whole.fractionAbove(image::kGoodSsim),
                    100.0 * far.fractionAbove(image::kGoodSsim));
        std::fflush(stdout);
    }
    std::printf("\nPaper: whole-BE ~0%% everywhere; far-BE 55-100%% "
                "(outdoor), 2-33%% (indoor).\n");
    return 0;
}
