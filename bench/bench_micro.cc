/**
 * @file
 * Microbenchmarks (google-benchmark) for the hot paths: SSIM, the
 * block codec, panorama rendering, BVH ray casts, frame-cache lookup,
 * near-set signatures, render-cost queries, and quadtree partitioning.
 */

#include <benchmark/benchmark.h>

#include "core/frame_cache.hh"
#include "core/partitioner.hh"
#include "core/prefetcher.hh"
#include "image/codec.hh"
#include "image/ssim.hh"
#include "render/cost_model.hh"
#include "render/renderer.hh"
#include "support/parallel.hh"
#include "support/rng.hh"
#include "world/bvh.hh"
#include "world/gen/generators.hh"

namespace {

using namespace coterie;

const world::VirtualWorld &
vikingWorld()
{
    static const world::VirtualWorld world =
        world::gen::makeWorld(world::gen::GameId::Viking, 42);
    return world;
}

image::Image
noiseImage(int w, int h, std::uint64_t seed)
{
    image::Image img(w, h);
    Rng rng(seed);
    for (auto &p : img.pixels())
        p = {static_cast<std::uint8_t>(rng.uniformInt(0, 255)),
             static_cast<std::uint8_t>(rng.uniformInt(0, 255)),
             static_cast<std::uint8_t>(rng.uniformInt(0, 255))};
    return img;
}

void
BM_Ssim(benchmark::State &state)
{
    const int side = static_cast<int>(state.range(0));
    const auto a = noiseImage(side, side, 1);
    const auto b = noiseImage(side, side, 2);
    for (auto _ : state)
        benchmark::DoNotOptimize(image::ssim(a, b));
    state.SetItemsProcessed(state.iterations());
}
BENCHMARK(BM_Ssim)->Arg(128)->Arg(256);

/** New fast kernel (tiled at the default 8x8/stride-4 geometry) on the
 *  acceptance geometry (512x256). */
void
BM_SsimKernelFast(benchmark::State &state)
{
    const auto la = noiseImage(512, 256, 1).lumaPlane();
    const auto lb = noiseImage(512, 256, 2).lumaPlane();
    for (auto _ : state)
        benchmark::DoNotOptimize(image::ssimLuma(la, lb, 512, 256));
    state.SetItemsProcessed(state.iterations());
}
BENCHMARK(BM_SsimKernelFast)->Unit(benchmark::kMillisecond);

/** Old naive O(win^2)-per-window formulation, same geometry. */
void
BM_SsimKernelNaive(benchmark::State &state)
{
    const auto la = noiseImage(512, 256, 1).lumaPlane();
    const auto lb = noiseImage(512, 256, 2).lumaPlane();
    for (auto _ : state) {
        benchmark::DoNotOptimize(
            image::ssimLumaReference(la, lb, 512, 256));
    }
    state.SetItemsProcessed(state.iterations());
}
BENCHMARK(BM_SsimKernelNaive)->Unit(benchmark::kMillisecond);

/** Dispatch + join overhead of one pooled parallelFor (trivial body). */
void
BM_PoolDispatch(benchmark::State &state)
{
    support::ThreadPool::instance(); // warm the pool outside the loop
    for (auto _ : state) {
        support::parallelFor(0, 1024, 16,
                             [](std::int64_t b, std::int64_t) {
                                 benchmark::DoNotOptimize(b);
                             });
    }
    state.SetItemsProcessed(state.iterations());
}
BENCHMARK(BM_PoolDispatch);

void
BM_CodecEncode(benchmark::State &state)
{
    const int side = static_cast<int>(state.range(0));
    const auto img = noiseImage(side, side, 3);
    for (auto _ : state)
        benchmark::DoNotOptimize(image::encode(img));
    state.SetBytesProcessed(state.iterations() * img.pixelCount() * 3);
}
BENCHMARK(BM_CodecEncode)->Arg(128)->Arg(256);

void
BM_CodecDecode(benchmark::State &state)
{
    const int side = static_cast<int>(state.range(0));
    const auto encoded = image::encode(noiseImage(side, side, 3));
    for (auto _ : state)
        benchmark::DoNotOptimize(image::decode(encoded));
}
BENCHMARK(BM_CodecDecode)->Arg(128)->Arg(256);

void
BM_RenderPanorama(benchmark::State &state)
{
    const auto &world = vikingWorld();
    const render::Renderer renderer(world);
    const geom::Vec3 eye = world.eyePosition(world.bounds().center());
    const int w = static_cast<int>(state.range(0));
    for (auto _ : state) {
        benchmark::DoNotOptimize(
            renderer.renderPanorama(eye, w, w / 2, {}));
    }
}
BENCHMARK(BM_RenderPanorama)->Arg(128)->Arg(256)->Unit(
    benchmark::kMillisecond);

void
BM_BvhClosestHit(benchmark::State &state)
{
    const auto &world = vikingWorld();
    Rng rng(7);
    geom::Ray ray;
    ray.origin = world.eyePosition(world.bounds().center());
    for (auto _ : state) {
        ray.dir = geom::Vec3{rng.normal(), rng.normal() * 0.2,
                             rng.normal()}
                      .normalized();
        benchmark::DoNotOptimize(world.bvh().closestHit(ray));
    }
}
BENCHMARK(BM_BvhClosestHit);

void
BM_NearSetSignature(benchmark::State &state)
{
    const auto &world = vikingWorld();
    const geom::Vec2 center = world.bounds().center();
    for (auto _ : state)
        benchmark::DoNotOptimize(world.nearSetSignature(center, 10.0));
}
BENCHMARK(BM_NearSetSignature);

void
BM_RenderCostQuery(benchmark::State &state)
{
    const auto &world = vikingWorld();
    const geom::Vec2 eye = world.bounds().center();
    for (auto _ : state) {
        benchmark::DoNotOptimize(
            render::renderTimeMs(world, eye, 0.0, 20.0, {}));
    }
}
BENCHMARK(BM_RenderCostQuery);

void
BM_CacheLookup(benchmark::State &state)
{
    core::FrameCacheParams params;
    params.bucketEdge = 1.0;
    core::FrameCache cache(params);
    Rng rng(5);
    for (int i = 0; i < 4000; ++i) {
        core::FrameCache::Key key;
        key.gridKey = static_cast<std::uint64_t>(i);
        key.position = {rng.uniform(0.0, 180.0), rng.uniform(0.0, 120.0)};
        key.leafRegionId = static_cast<std::uint32_t>(i % 40);
        key.nearSetSignature = 0x5eed;
        cache.insert(key, 200000);
    }
    core::FrameCache::Key probe;
    probe.nearSetSignature = 0x5eed;
    for (auto _ : state) {
        probe.gridKey = UINT64_MAX;
        probe.position = {rng.uniform(0.0, 180.0),
                          rng.uniform(0.0, 120.0)};
        probe.leafRegionId = static_cast<std::uint32_t>(
            rng.uniformInt(0, 39));
        benchmark::DoNotOptimize(cache.lookup(probe, 0.5));
    }
}
BENCHMARK(BM_CacheLookup);

/** Quadtree partition wall time; arg 1 = serial, 0 = shared pool. */
void
BM_PartitionWorld(benchmark::State &state)
{
    const auto world =
        world::gen::makeWorld(world::gen::GameId::Pool, 42);
    core::PartitionParams params;
    params.threads = static_cast<int>(state.range(0));
    for (auto _ : state) {
        benchmark::DoNotOptimize(
            core::partitionWorld(world, device::pixel2(), params));
    }
}
BENCHMARK(BM_PartitionWorld)->Arg(1)->Arg(0)->Unit(
    benchmark::kMillisecond);

void
BM_MaxCutoffRadius(benchmark::State &state)
{
    const auto &world = vikingWorld();
    const geom::Vec2 eye = world.bounds().center();
    for (auto _ : state) {
        benchmark::DoNotOptimize(
            core::maxCutoffRadius(world, eye, device::pixel2()));
    }
}
BENCHMARK(BM_MaxCutoffRadius);

} // namespace

BENCHMARK_MAIN();
