/**
 * @file
 * Table 10: the user-study substitute. Six 20-second single-player
 * traces (two per evaluation game) are replayed under Coterie-style
 * frame reuse; every frame switch is scored on the paper's 1-5 scale
 * from the SSIM between the outgoing and incoming far-BE frames.
 *
 * Paper: 0%% / 0%% / 5.5%% / 29.2%% / 65.3%% over scores 1..5 (mean
 * ~4.6); a few participants noticed stutter where the cutoff radius
 * was small.
 */

#include "bench_util.hh"

#include "core/discontinuity.hh"
#include "trace/trajectory.hh"

using namespace coterie;
using namespace coterie::bench;
using namespace coterie::core;

int
main()
{
    banner("Table 10 — discontinuity scores over trace replays",
           "Table 10, Section 7.4");

    std::array<double, 5> total{};
    int traces = 0;
    for (auto game : world::gen::evaluationGames()) {
        auto session = makeSession(game, 1, 20.0);
        const AnalyticSimilarity model(session->similarityParams());
        for (std::uint64_t seed : {11ull, 12ull}) {
            trace::TrajectoryParams tp;
            tp.players = 1;
            tp.durationS = 20.0;
            tp.seed = seed;
            const auto trace = trace::generateTrace(
                session->info(), session->world(), tp);
            const ScoreDistribution dist = scoreTraceReplay(
                trace.players[0], session->grid(), session->regions(),
                model, session->distThresholds());
            std::printf("  %-9s trace %llu: mean score %.2f  "
                        "[1..5: %4.1f%% %4.1f%% %4.1f%% %4.1f%% "
                        "%4.1f%%]\n",
                        session->info().name.c_str(),
                        static_cast<unsigned long long>(seed - 10),
                        dist.mean(), 100 * dist.fraction[0],
                        100 * dist.fraction[1], 100 * dist.fraction[2],
                        100 * dist.fraction[3], 100 * dist.fraction[4]);
            for (std::size_t i = 0; i < 5; ++i)
                total[i] += dist.fraction[i];
            ++traces;
            std::fflush(stdout);
        }
    }
    std::printf("\n  aggregate over %d traces: ", traces);
    double mean = 0.0;
    for (std::size_t i = 0; i < 5; ++i) {
        const double f = total[i] / traces;
        std::printf("%4.1f%% ", 100 * f);
        mean += f * static_cast<double>(i + 1);
    }
    std::printf(" (mean %.2f)\n", mean);
    std::printf("\nPaper: 0.0%% / 0.0%% / 5.5%% / 29.2%% / 65.3%% "
                "(mean 4.60).\n");
    return 0;
}
