/**
 * @file
 * Table 9: network bandwidth of BE-frame prefetching (Mbps) and FI
 * exchange (Kbps) for Multi-Furion (1P) and Coterie (1-4P), plus the
 * per-player network-load reduction factor (paper: 10.6x-25.7x).
 */

#include "bench_util.hh"

using namespace coterie;
using namespace coterie::bench;
using namespace coterie::core;

namespace {

struct PaperRow
{
    double furion1p;
    double coterie[4]; // 1P..4P, Mbps
};

PaperRow
paperRow(world::gen::GameId game)
{
    using world::gen::GameId;
    switch (game) {
      case GameId::Viking: return {276, {26, 52, 76, 100}};
      case GameId::CTS:    return {264, {14, 27, 42, 56}};
      case GameId::Racing: return {283, {11, 22, 34, 42}};
      default: break;
    }
    return {};
}

} // namespace

int
main()
{
    banner("Table 9 — network bandwidth: BE (Mbps) and FI (Kbps)",
           "Table 9, Section 7.3");

    obs::Json games = obs::Json::object();
    for (auto game : world::gen::evaluationGames()) {
        const PaperRow paper = paperRow(game);
        std::printf("\n-- %s --\n",
                    world::gen::gameInfo(game).name.c_str());
        auto mf_session = makeSession(game, 1);
        const SystemResult furion = mf_session->runMultiFurionSystem();
        const double mf_total = furion.players[0].beMbps;
        std::printf("  Multi-Furion 1P: BE %.1f Mbps (paper %.0f), FI "
                    "%.1f Kbps\n",
                    mf_total, paper.furion1p, furion.players[0].fiKbps);

        obs::Json gameRow = obs::Json::object();
        gameRow.set("multi_furion_1p_be_mbps", obs::Json(mf_total));
        obs::Json coterieRows = obs::Json::object();
        double coterie_1p = 0.0;
        for (int players = 1; players <= 4; ++players) {
            auto session = makeSession(game, players);
            const SystemResult result = session->runCoterieSystem();
            double be_total = 0.0, fi_total = 0.0;
            for (const PlayerMetrics &m : result.players) {
                be_total += m.beMbps;
                fi_total += m.fiKbps;
            }
            if (players == 1)
                coterie_1p = be_total;
            std::printf("  Coterie %dP: BE %.1f Mbps (paper %.0f), FI "
                        "%.0f Kbps\n",
                        players, be_total, paper.coterie[players - 1],
                        fi_total);
            std::fflush(stdout);
            obs::Json row = obs::Json::object();
            row.set("be_mbps", obs::Json(be_total));
            row.set("be_mbps_paper",
                    obs::Json(paper.coterie[players - 1]));
            row.set("fi_kbps", obs::Json(fi_total));
            coterieRows.set(std::to_string(players) + "p",
                            std::move(row));
        }
        const double reduction =
            coterie_1p > 0.0 ? mf_total / coterie_1p : 0.0;
        std::printf("  per-player load reduction: %.1fx (paper "
                    "10.6x-25.7x across games)\n",
                    reduction);
        gameRow.set("coterie", std::move(coterieRows));
        gameRow.set("per_player_load_reduction", obs::Json(reduction));
        games.set(world::gen::gameInfo(game).name, std::move(gameRow));
    }
    obs::Json doc = obs::Json::object();
    doc.set("games", std::move(games));
    writeBenchJson("table9_bandwidth", doc);
    return 0;
}
