/**
 * @file
 * Table 2: the catalogue of the nine study games — genre, foreground
 * interaction, indoor/outdoor type — plus the world statistics our
 * procedural versions realise (object counts, asset mix, world size).
 */

#include <map>

#include "bench_util.hh"

using namespace coterie;
using namespace coterie::bench;

int
main()
{
    banner("Table 2 — the nine study games", "Table 2, Section 4.1");

    std::printf("\n  %-9s %-24s %-28s %-8s\n", "game", "genre",
                "foreground interaction", "type");
    for (const auto &info : world::gen::allGames()) {
        std::printf("  %-9s %-24s %-28s %-8s\n", info.name.c_str(),
                    info.genre.c_str(),
                    info.foregroundInteraction.c_str(),
                    info.sceneType == world::SceneType::Outdoor
                        ? "outdoor"
                        : "indoor");
    }

    std::printf("\n  procedural realisations:\n");
    std::printf("  %-9s %10s %9s %12s | asset mix\n", "game", "dims (m)",
                "objects", "triangles");
    for (const auto &info : world::gen::allGames()) {
        const auto world = world::gen::makeWorld(info.id, 42);
        std::uint64_t triangles = 0;
        std::map<std::string, int> kinds;
        for (const auto &obj : world.objects()) {
            triangles += obj.triangles;
            ++kinds[world::assetKindName(obj.kind)];
        }
        std::printf("  %-9s %5.0fx%-5.0f %8zu %11.1fM |", info.name.c_str(),
                    info.width, info.height, world.objects().size(),
                    triangles / 1e6);
        for (const auto &[kind, count] : kinds)
            std::printf(" %s:%d", kind.c_str(), count);
        std::printf("\n");
    }
    return 0;
}
