/**
 * @file
 * Figure 12: CPU/GPU utilisation, SoC temperature, and battery power
 * over a 30-minute Coterie run with 1-4 players. The utilisations come
 * from the system simulation; the temperature and power traces from the
 * calibrated thermal RC / power models driven by those loads.
 *
 * Paper: <= 40%% CPU, <= 65%% GPU, temperature under the 52 C limit,
 * ~4 W steady draw, all independent of the player count.
 */

#include "bench_util.hh"
#include "csv.hh"

#include "device/power.hh"
#include "device/thermal.hh"

using namespace coterie;
using namespace coterie::bench;
using namespace coterie::core;

int
main()
{
    banner("Figure 12 — resource usage over a 30-minute run",
           "Figure 12, Section 7.3");

    CsvWriter csv("fig12_resources",
                  {"game", "players", "minute", "cpu_pct", "gpu_pct",
                   "temperature_c", "power_w"});
    for (auto game : world::gen::evaluationGames()) {
        std::printf("\n-- %s --\n",
                    world::gen::gameInfo(game).name.c_str());
        std::printf("  %2s %6s %6s | temperature (C) @ 5-min marks"
                    "                  | %6s %8s\n",
                    "P", "cpu%", "gpu%", "power", "battery");
        for (int players = 1; players <= 4; ++players) {
            auto session = makeSession(game, players, 30.0);
            const SystemResult result = session->runCoterieSystem();
            const PlayerMetrics &m = result.players.front();

            device::PowerInputs inputs;
            inputs.cpuPct = m.cpuPct;
            inputs.gpuPct = m.gpuPct;
            inputs.networkMbps = m.beMbps;
            const double watts =
                device::powerDrawW(device::PowerModel{}, inputs);

            device::ThermalModel thermal{device::ThermalParams{}};
            std::printf("  %2d %6.1f %6.1f |", players, m.cpuPct,
                        m.gpuPct);
            for (int minute = 0; minute <= 30; minute += 5) {
                if (minute > 0) {
                    for (int s = 0; s < 300; ++s)
                        thermal.step(watts, 1.0);
                }
                std::printf(" %5.1f", thermal.temperatureC());
                csv.row(world::gen::gameInfo(game).name, players,
                        minute, m.cpuPct, m.gpuPct,
                        thermal.temperatureC(), watts);
            }
            std::printf(" | %5.2fW %6.2fh\n", watts,
                        device::batteryLifeHours(device::pixel2(),
                                                 watts));
            std::fflush(stdout);
        }
    }
    std::printf("\nPaper: CPU <= 40%%, GPU <= 65%%, temperature below "
                "52 C, ~4 W steady,\n> 2.5 h battery life; none of it "
                "grows with the player count.\n");
    return 0;
}
