/**
 * @file
 * Table 3: game stats and the output of the adaptive cutoff scheme for
 * all nine games — grid points, quadtree depth (avg/max), leaf-region
 * count, and (modeled) offline processing time.
 */

#include "bench_util.hh"

using namespace coterie;
using namespace coterie::bench;
using namespace coterie::core;

namespace {

struct PaperRow
{
    double gridMillions;
    double avgDepth;
    int maxDepth;
    int leaves;
    double hours;
};

/** Table 3 as published. */
PaperRow
paperRow(world::gen::GameId id)
{
    using world::gen::GameId;
    switch (id) {
      case GameId::Viking:   return {24.90, 5.87, 6, 2944, 6.60};
      case GameId::CTS:      return {268.40, 3.81, 4, 235, 1.30};
      case GameId::Racing:   return {7.70, 3.70, 4, 136, 1.25};
      case GameId::DS:       return {3.00, 3.80, 4, 160, 1.66};
      case GameId::FPS:      return {5.09, 3.92, 4, 208, 1.10};
      case GameId::Soccer:   return {14.90, 3.88, 4, 136, 1.18};
      case GameId::Pool:     return {0.13, 2.68, 3, 19, 0.14};
      case GameId::Bowling:  return {1.43, 2.00, 2, 16, 0.13};
      case GameId::Corridor: return {1.54, 2.80, 3, 40, 0.29};
    }
    return {};
}

} // namespace

int
main()
{
    banner("Table 3 — adaptive cutoff scheme output, all nine games",
           "Table 3, Section 4.4");

    std::printf("\n  %-9s | %13s | %11s | %13s | %11s\n", "game",
                "grid pts (M)", "depth a/m", "leaf regions",
                "hours (mdl)");
    std::printf("  %-9s | %6s %6s | %5s %5s | %6s %6s | %5s %5s\n", "",
                "paper", "ours", "paper", "ours", "paper", "ours",
                "paper", "ours");
    for (const auto &info : world::gen::allGames()) {
        const PaperRow paper = paperRow(info.id);
        const auto world = world::gen::makeWorld(info.id, 42);
        const auto grid = world::gen::makeGrid(info);
        PartitionParams params;
        params.reachable = world::gen::makeReachability(info, world);
        const auto result =
            partitionWorld(world, device::pixel2(), params);
        std::printf("  %-9s | %6.2f %6.2f | %3.2f/%d %3.2f/%d | "
                    "%6d %6zu | %5.2f %5.2f\n",
                    info.name.c_str(), paper.gridMillions,
                    grid.pointCount() / 1e6, paper.avgDepth,
                    paper.maxDepth, result.avgLeafDepth,
                    result.maxLeafDepth, paper.leaves,
                    result.leaves.size(), paper.hours,
                    result.modeledHours);
        std::fflush(stdout);
    }
    std::printf("\n  (wall-clock partitioning here takes < 1 s per game; "
                "'hours' models the paper's\n   per-sample device "
                "measurement cost.)\n");
    return 0;
}
