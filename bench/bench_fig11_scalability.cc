/**
 * @file
 * Figure 11: FPS vs number of players (1-4) for four system variants —
 * Multi-Furion with and without an exact-match cache, Coterie without
 * its cache, and full Coterie — across the three evaluation games.
 *
 * Paper shape: all meet 60 FPS at 1 player; Multi-Furion (both
 * variants, indistinguishable) degrades to ~24 FPS at 4 players;
 * Coterie w/o cache degrades more slowly (smaller far-BE frames);
 * Coterie with cache holds 60 FPS through 4 players.
 */

#include "bench_util.hh"
#include "csv.hh"

using namespace coterie;
using namespace coterie::bench;
using namespace coterie::core;

int
main()
{
    banner("Figure 11 — FPS scalability with player count",
           "Figure 11, Section 7.2");

    CsvWriter csv("fig11_scalability",
                  {"game", "system", "players", "fps"});
    for (auto game : world::gen::evaluationGames()) {
        const auto &info = world::gen::gameInfo(game);
        std::printf("\n-- %s --\n", info.name.c_str());
        std::printf("  %-22s %6s %6s %6s %6s\n", "system", "1P", "2P",
                    "3P", "4P");
        double fps[4][4] = {};
        for (int players = 1; players <= 4; ++players) {
            auto session = makeSession(game, players, 30.0);
            fps[0][players - 1] =
                session->runMultiFurionSystem(false).avgFps();
            fps[1][players - 1] =
                session->runMultiFurionSystem(true).avgFps();
            fps[2][players - 1] =
                session->runCoterieSystem(false).avgFps();
            fps[3][players - 1] =
                session->runCoterieSystem(true).avgFps();
            std::fflush(stdout);
        }
        const char *names[] = {"Multi-Furion", "Multi-Furion + cache",
                               "Coterie w/o cache", "Coterie"};
        for (int v = 0; v < 4; ++v) {
            std::printf("  %-22s", names[v]);
            for (int p = 0; p < 4; ++p) {
                std::printf(" %6.1f", fps[v][p]);
                csv.row(info.name, names[v], p + 1, fps[v][p]);
            }
            std::printf("\n");
        }
    }
    std::printf("\nPaper: Multi-Furion (both) falls to ~24 FPS at 4P; "
                "Coterie w/o cache degrades\nslower; Coterie holds 60 FPS "
                "at 4P.\n");
    return 0;
}
