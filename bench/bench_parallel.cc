/**
 * @file
 * Serial-vs-pooled wall-clock baseline for the parallel frame pipeline.
 *
 * Runs the two workloads the perf trajectory is tracked on — a Viking
 * adaptive-cutoff partition and a 64-frame panorama trace sweep
 * (render + encode-path SSIM between consecutive frames) — once with
 * every stage forced serial and once through the shared thread pool,
 * plus the SSIM kernel old-vs-new microcomparison, and drops the
 * numbers into results/BENCH_parallel.json.
 */

#include <chrono>
#include <cstdio>
#include <thread>
#include <vector>

#include "bench_util.hh"
#include "core/partitioner.hh"
#include "image/ssim.hh"
#include "render/renderer.hh"
#include "support/parallel.hh"
#include "support/rng.hh"
#include "world/gen/generators.hh"

namespace {

using namespace coterie;

double
seconds(const std::function<void()> &fn)
{
    const auto start = std::chrono::steady_clock::now();
    fn();
    return std::chrono::duration<double>(std::chrono::steady_clock::now() -
                                         start)
        .count();
}

/** Viking adaptive-cutoff partition (threads: 1 = serial, 0 = pool). */
double
partitionSeconds(const world::VirtualWorld &world, int threads)
{
    core::PartitionParams params;
    params.threads = threads;
    return seconds([&] {
        const auto result =
            core::partitionWorld(world, device::pixel2(), params);
        if (result.leaves.empty())
            std::abort(); // keep the optimizer honest
    });
}

/**
 * 64-frame trace sweep: walk a straight line through the world,
 * rendering a far-BE-style panorama per step and scoring SSIM between
 * consecutive frames — the hot loop of every similarity experiment.
 */
double
traceSweepSeconds(const world::VirtualWorld &world, int threads)
{
    constexpr int kFrames = 64;
    constexpr int kWidth = 256, kHeight = 128;
    const render::Renderer renderer(world);
    render::RenderOptions opts;
    opts.threads = threads;
    image::SsimParams ssimParams;
    ssimParams.threads = threads;
    const geom::Rect &b = world.bounds();
    return seconds([&] {
        image::Image prev;
        double acc = 0.0;
        for (int i = 0; i < kFrames; ++i) {
            const double t = (i + 0.5) / kFrames;
            const geom::Vec2 p{b.lo.x + t * b.width(),
                               b.lo.y + 0.5 * b.height()};
            image::Image frame = renderer.renderPanorama(
                world.eyePosition(p), kWidth, kHeight, opts);
            if (i > 0)
                acc += image::ssim(prev, frame, ssimParams);
            prev = std::move(frame);
        }
        if (acc < 0.0)
            std::abort();
    });
}

image::Image
noiseImage(int w, int h, std::uint64_t seed)
{
    image::Image img(w, h);
    Rng rng(seed);
    for (auto &p : img.pixels())
        p = {static_cast<std::uint8_t>(rng.uniformInt(0, 255)),
             static_cast<std::uint8_t>(rng.uniformInt(0, 255)),
             static_cast<std::uint8_t>(rng.uniformInt(0, 255))};
    return img;
}

} // namespace

int
main()
{
    const auto world = world::gen::makeWorld(world::gen::GameId::Viking, 42);

    const unsigned hardware = std::thread::hardware_concurrency();
    std::printf("BENCH_parallel: serial vs pooled wall-clock "
                "(pool lanes: %d, hardware_concurrency: %u)\n",
                support::ThreadPool::instance().concurrency(),
                hardware);
    if (hardware <= 1) {
        std::printf("  *** WARNING: hardware_concurrency=%u — pooled "
                    "numbers degenerate to serial on this machine; "
                    "speedups recorded here are NOT comparable "
                    "against multi-core baselines ***\n",
                    hardware);
    }

    const double partSerial = partitionSeconds(world, 1);
    const double partPooled = partitionSeconds(world, 0);
    std::printf("  viking_partition   serial %.3fs  pooled %.3fs  "
                "speedup %.2fx\n",
                partSerial, partPooled, partSerial / partPooled);

    const double sweepSerial = traceSweepSeconds(world, 1);
    const double sweepPooled = traceSweepSeconds(world, 0);
    std::printf("  trace_sweep_64f    serial %.3fs  pooled %.3fs  "
                "speedup %.2fx\n",
                sweepSerial, sweepPooled, sweepSerial / sweepPooled);

    // SSIM kernel, old (naive windows) vs new (fast), 512x256 luma.
    const image::Image a = noiseImage(512, 256, 1);
    const image::Image b = noiseImage(512, 256, 2);
    const auto la = a.lumaPlane();
    const auto lb = b.lumaPlane();
    constexpr int kSsimReps = 20;
    const double ssimNaive = seconds([&] {
        for (int i = 0; i < kSsimReps; ++i)
            image::ssimLumaReference(la, lb, 512, 256);
    });
    const double ssimFast = seconds([&] {
        for (int i = 0; i < kSsimReps; ++i)
            image::ssimLuma(la, lb, 512, 256);
    });
    std::printf("  ssim_512x256 (x%d) naive %.3fs  fast %.3fs  "
                "speedup %.2fx\n",
                kSsimReps, ssimNaive, ssimFast,
                ssimNaive / ssimFast);

    const auto workload = [](double baselineS, const char *baselineKey,
                             double fastS, const char *fastKey) {
        obs::Json w = obs::Json::object();
        w.set(baselineKey, obs::Json(baselineS));
        w.set(fastKey, obs::Json(fastS));
        w.set("speedup", obs::Json(baselineS / fastS));
        return w;
    };
    obs::Json workloads = obs::Json::object();
    workloads.set("viking_partition",
                  workload(partSerial, "serial_s", partPooled, "pooled_s"));
    workloads.set("trace_sweep_64_frames",
                  workload(sweepSerial, "serial_s", sweepPooled,
                           "pooled_s"));
    workloads.set("ssim_512x256_x" + std::to_string(kSsimReps),
                  workload(ssimNaive, "naive_s", ssimFast, "fast_s"));
    obs::Json doc = obs::Json::object();
    doc.set("pool_lanes",
            obs::Json(support::ThreadPool::instance().concurrency()));
    doc.set("hardware_concurrency",
            obs::Json(static_cast<std::uint64_t>(
                std::thread::hardware_concurrency())));
    doc.set("workloads", std::move(workloads));
    bench::writeBenchJson("parallel", doc);
    return 0;
}
