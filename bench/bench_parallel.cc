/**
 * @file
 * Serial-vs-pooled wall-clock baseline for the parallel frame pipeline
 * and the parallel discrete-event engine.
 *
 * Runs the two workloads the perf trajectory is tracked on — a Viking
 * adaptive-cutoff partition and a 64-frame panorama trace sweep
 * (render + encode-path SSIM between consecutive frames) — once with
 * every stage forced serial and once through the shared thread pool,
 * plus the SSIM kernel old-vs-new microcomparison, plus a sim-engine
 * thread sweep: the bench_fleet 32x4 leg through the lane engine at
 * COTERIE_THREADS=1/2/4/8 against the pre-lane serial event loop
 * (DESIGN.md §12), reporting events/sec and wall seconds per simulated
 * second. The pool is sized once at process start, so each sweep point
 * re-executes this binary with COTERIE_THREADS pinned (--sim-child).
 * Everything lands in results/BENCH_parallel.json.
 *
 * `--check` turns the degenerate-pool condition into a hard failure:
 * on a hardware_concurrency == 1 machine every "pooled" and "lane"
 * number is serial by construction, and recording such a run as a
 * multi-core trajectory would poison the history.
 */

#include <chrono>
#include <cstdio>
#include <cstdlib>
#include <cstring>
#include <string>
#include <thread>
#include <vector>

#include "bench_util.hh"
#include "core/fleet.hh"
#include "core/partitioner.hh"
#include "image/ssim.hh"
#include "render/renderer.hh"
#include "support/parallel.hh"
#include "support/rng.hh"
#include "world/gen/generators.hh"

namespace {

using namespace coterie;

double
seconds(const std::function<void()> &fn)
{
    const auto start = std::chrono::steady_clock::now();
    fn();
    return std::chrono::duration<double>(std::chrono::steady_clock::now() -
                                         start)
        .count();
}

/** Viking adaptive-cutoff partition (threads: 1 = serial, 0 = pool). */
double
partitionSeconds(const world::VirtualWorld &world, int threads)
{
    core::PartitionParams params;
    params.threads = threads;
    return seconds([&] {
        const auto result =
            core::partitionWorld(world, device::pixel2(), params);
        if (result.leaves.empty())
            std::abort(); // keep the optimizer honest
    });
}

/**
 * 64-frame trace sweep: walk a straight line through the world,
 * rendering a far-BE-style panorama per step and scoring SSIM between
 * consecutive frames — the hot loop of every similarity experiment.
 */
double
traceSweepSeconds(const world::VirtualWorld &world, int threads)
{
    constexpr int kFrames = 64;
    constexpr int kWidth = 256, kHeight = 128;
    const render::Renderer renderer(world);
    render::RenderOptions opts;
    opts.threads = threads;
    image::SsimParams ssimParams;
    ssimParams.threads = threads;
    const geom::Rect &b = world.bounds();
    return seconds([&] {
        image::Image prev;
        double acc = 0.0;
        for (int i = 0; i < kFrames; ++i) {
            const double t = (i + 0.5) / kFrames;
            const geom::Vec2 p{b.lo.x + t * b.width(),
                               b.lo.y + 0.5 * b.height()};
            image::Image frame = renderer.renderPanorama(
                world.eyePosition(p), kWidth, kHeight, opts);
            if (i > 0)
                acc += image::ssim(prev, frame, ssimParams);
            prev = std::move(frame);
        }
        if (acc < 0.0)
            std::abort();
    });
}

image::Image
noiseImage(int w, int h, std::uint64_t seed)
{
    image::Image img(w, h);
    Rng rng(seed);
    for (auto &p : img.pixels())
        p = {static_cast<std::uint8_t>(rng.uniformInt(0, 255)),
             static_cast<std::uint8_t>(rng.uniformInt(0, 255)),
             static_cast<std::uint8_t>(rng.uniformInt(0, 255))};
    return img;
}

// --- Sim-engine thread sweep ----------------------------------------

/** One sweep-point measurement, parsed back from a --sim-child run. */
struct SimRun
{
    bool ok = false;
    std::uint64_t events = 0;
    std::uint64_t deliveries = 0;
    std::uint64_t renders = 0;
    double wallS = 0.0;
    double horizonMs = 0.0;

    double eventsPerSec() const
    {
        return wallS > 0.0 ? static_cast<double>(events) / wallS : 0.0;
    }
    double wallPerSimS() const
    {
        return horizonMs > 0.0 ? wallS / (horizonMs / 1000.0) : 0.0;
    }
};

/**
 * The measured workload: the bench_fleet sweep leg (sessions x players
 * over one shared world + pano cache, renderOnFetch so barriers carry
 * real render batches), through either DES engine.
 */
SimRun
runSimLeg(int sessions, int players, double durationS, int renderW,
          int renderH, bool serialEngine)
{
    using namespace coterie::core;
    FleetCapacity cap;
    cap.maxSessions = sessions;
    cap.maxClients = sessions * players;
    SessionManager mgr(cap, {}, 256ull << 20, serialEngine);

    SessionParams sp;
    sp.players = players;
    sp.durationS = durationS;
    sp.seed = 42;
    sp.calibrateSimilarity = false;
    sp.frameStore.sharedPanoCache = mgr.panoCache();
    const auto base = Session::create(world::gen::GameId::Viking, sp);

    const int routes = (sessions + 1) / 2;
    for (int i = 0; i < sessions; ++i) {
        FleetSessionSpec spec;
        spec.base = base.get();
        spec.traceSeed = 1000 + static_cast<std::uint64_t>(i % routes);
        spec.renderOnFetch = true;
        spec.renderWidth = renderW;
        spec.renderHeight = renderH;
        mgr.submit(spec);
    }

    SimRun run;
    const auto t0 = std::chrono::steady_clock::now();
    const FleetResult fleet = mgr.run();
    const auto t1 = std::chrono::steady_clock::now();
    run.ok = true;
    run.wallS = std::chrono::duration<double>(t1 - t0).count();
    run.events = mgr.queue().executedEvents();
    run.horizonMs = fleet.horizonMs;
    for (const auto &s : fleet.sessions) {
        run.renders += s.fleetRenders;
        for (const auto &p : s.result.players)
            run.deliveries += p.framesFetched;
    }
    if (std::getenv("COTERIE_SIM_DUMP") != nullptr) {
        for (const auto &s : fleet.sessions) {
            std::uint64_t fetched = 0, displayed = 0, retries = 0,
                          timeouts = 0;
            for (const auto &p : s.result.players) {
                fetched += p.framesFetched;
                displayed += p.framesDisplayed;
                retries += p.netRetries;
                timeouts += p.netTimeouts;
            }
            std::fprintf(stderr,
                         "SIMDUMP id=%u phase=%d renders=%llu "
                         "fetched=%llu displayed=%llu retries=%llu "
                         "timeouts=%llu finished=%.6f\n",
                         s.id, static_cast<int>(s.phase),
                         static_cast<unsigned long long>(s.fleetRenders),
                         static_cast<unsigned long long>(fetched),
                         static_cast<unsigned long long>(displayed),
                         static_cast<unsigned long long>(retries),
                         static_cast<unsigned long long>(timeouts),
                         s.finishedAtMs);
        }
    }
    return run;
}

/** Child mode: run one leg and print a machine-readable result line. */
int
simChildMain(int argc, char **argv)
{
    if (argc != 8) {
        std::fprintf(stderr,
                     "usage: --sim-child S P DUR W H serial|lane\n");
        return 2;
    }
    const int sessions = std::atoi(argv[2]);
    const int players = std::atoi(argv[3]);
    const double durationS = std::atof(argv[4]);
    const int renderW = std::atoi(argv[5]);
    const int renderH = std::atoi(argv[6]);
    const bool serial = std::strcmp(argv[7], "serial") == 0;
    const SimRun run = runSimLeg(sessions, players, durationS, renderW,
                                 renderH, serial);
    std::printf("SIMCHILD events=%llu deliveries=%llu renders=%llu "
                "wall_s=%.9f horizon_ms=%.6f\n",
                static_cast<unsigned long long>(run.events),
                static_cast<unsigned long long>(run.deliveries),
                static_cast<unsigned long long>(run.renders), run.wallS,
                run.horizonMs);
    return 0;
}

/** Re-exec this binary with COTERIE_THREADS pinned and parse back. */
SimRun
runSimChild(const char *self, int threads, int sessions, int players,
            double durationS, int renderW, int renderH, bool serial)
{
    char cmd[512];
    std::snprintf(cmd, sizeof cmd,
                  "COTERIE_THREADS=%d '%s' --sim-child %d %d %.3f %d "
                  "%d %s",
                  threads, self, sessions, players, durationS, renderW,
                  renderH, serial ? "serial" : "lane");
    SimRun run;
    std::FILE *pipe = popen(cmd, "r");
    if (!pipe) {
        std::fprintf(stderr, "  sim sweep: cannot spawn '%s'\n", cmd);
        return run;
    }
    char line[256];
    while (std::fgets(line, sizeof line, pipe)) {
        unsigned long long events = 0, deliveries = 0, renders = 0;
        double wallS = 0.0, horizonMs = 0.0;
        if (std::sscanf(line,
                        "SIMCHILD events=%llu deliveries=%llu "
                        "renders=%llu wall_s=%lf horizon_ms=%lf",
                        &events, &deliveries, &renders, &wallS,
                        &horizonMs) == 5) {
            run.ok = true;
            run.events = events;
            run.deliveries = deliveries;
            run.renders = renders;
            run.wallS = wallS;
            run.horizonMs = horizonMs;
        }
    }
    if (pclose(pipe) != 0)
        run.ok = false;
    return run;
}

} // namespace

int
main(int argc, char **argv)
{
    if (argc > 1 && std::strcmp(argv[1], "--sim-child") == 0)
        return simChildMain(argc, argv);

    bool smoke = false;
    bool check = false;
    for (int i = 1; i < argc; ++i) {
        if (std::strcmp(argv[i], "--smoke") == 0)
            smoke = true;
        else if (std::strcmp(argv[i], "--check") == 0)
            check = true;
    }

    const auto world = world::gen::makeWorld(world::gen::GameId::Viking, 42);

    bool ok = true;
    const unsigned hardware = std::thread::hardware_concurrency();
    std::printf("BENCH_parallel: serial vs pooled wall-clock "
                "(pool lanes: %d, hardware_concurrency: %u)\n",
                support::ThreadPool::instance().concurrency(),
                hardware);
    if (hardware <= 1) {
        std::printf("  *** %s: hardware_concurrency=%u — pooled "
                    "numbers degenerate to serial on this machine; "
                    "speedups recorded here are NOT comparable "
                    "against multi-core baselines ***\n",
                    check ? "CHECK FAILED" : "WARNING", hardware);
        ok = false;
    }

    const double partSerial = partitionSeconds(world, 1);
    const double partPooled = partitionSeconds(world, 0);
    std::printf("  viking_partition   serial %.3fs  pooled %.3fs  "
                "speedup %.2fx\n",
                partSerial, partPooled, partSerial / partPooled);

    const double sweepSerial = traceSweepSeconds(world, 1);
    const double sweepPooled = traceSweepSeconds(world, 0);
    std::printf("  trace_sweep_64f    serial %.3fs  pooled %.3fs  "
                "speedup %.2fx\n",
                sweepSerial, sweepPooled, sweepSerial / sweepPooled);

    // SSIM kernel, old (naive windows) vs new (fast), 512x256 luma.
    const image::Image a = noiseImage(512, 256, 1);
    const image::Image b = noiseImage(512, 256, 2);
    const auto la = a.lumaPlane();
    const auto lb = b.lumaPlane();
    constexpr int kSsimReps = 20;
    const double ssimNaive = seconds([&] {
        for (int i = 0; i < kSsimReps; ++i)
            image::ssimLumaReference(la, lb, 512, 256);
    });
    const double ssimFast = seconds([&] {
        for (int i = 0; i < kSsimReps; ++i)
            image::ssimLuma(la, lb, 512, 256);
    });
    std::printf("  ssim_512x256 (x%d) naive %.3fs  fast %.3fs  "
                "speedup %.2fx\n",
                kSsimReps, ssimNaive, ssimFast,
                ssimNaive / ssimFast);

    // Sim-engine thread sweep: the bench_fleet leg through the serial
    // event loop once, then through the lane engine with the pool
    // pinned at 1/2/4/8 threads. Results are bit-identical by the
    // determinism contract; only the wall clock moves.
    const int simSessions = smoke ? 8 : 32;
    const int simPlayers = smoke ? 2 : 4;
    const double simDurationS = smoke ? 5.0 : 8.0;
    const int simW = smoke ? 48 : 64;
    const int simH = smoke ? 24 : 32;
    std::printf("  sim engine (fleet %dx%d, %.0fs sim):\n", simSessions,
                simPlayers, simDurationS);
    const SimRun serialRun =
        runSimChild(argv[0], 1, simSessions, simPlayers, simDurationS,
                    simW, simH, /*serial=*/true);
    if (serialRun.ok)
        std::printf("    serial engine      %7.3fs  %9.0f events/s  "
                    "%.3f wall-s per sim-s\n",
                    serialRun.wallS, serialRun.eventsPerSec(),
                    serialRun.wallPerSimS());
    else
        ok = false;
    obs::Json simEngine = obs::Json::object();
    char simLeg[32];
    std::snprintf(simLeg, sizeof simLeg, "s%d_p%d", simSessions,
                  simPlayers);
    simEngine.set("leg", obs::Json(std::string(simLeg)));
    if (serialRun.ok) {
        obs::Json row = obs::Json::object();
        row.set("wall_s", obs::Json(serialRun.wallS));
        row.set("events", obs::Json(serialRun.events));
        row.set("deliveries", obs::Json(serialRun.deliveries));
        row.set("events_per_s", obs::Json(serialRun.eventsPerSec()));
        row.set("wall_per_sim_s", obs::Json(serialRun.wallPerSimS()));
        simEngine.set("serial_engine", std::move(row));
    }
    for (const int threads : {1, 2, 4, 8}) {
        const SimRun laneRun =
            runSimChild(argv[0], threads, simSessions, simPlayers,
                        simDurationS, simW, simH, /*serial=*/false);
        if (!laneRun.ok) {
            ok = false;
            continue;
        }
        const double speedup = serialRun.ok && laneRun.wallS > 0.0
                                   ? serialRun.wallS / laneRun.wallS
                                   : 0.0;
        std::printf("    lane engine t=%d    %7.3fs  %9.0f events/s  "
                    "%.3f wall-s per sim-s  speedup %.2fx\n",
                    threads, laneRun.wallS, laneRun.eventsPerSec(),
                    laneRun.wallPerSimS(), speedup);
        if (serialRun.ok &&
            (laneRun.events != serialRun.events ||
             laneRun.deliveries != serialRun.deliveries ||
             laneRun.renders != serialRun.renders)) {
            std::printf("  CHECK FAILED: lane engine at t=%d diverged "
                        "from the serial engine (events %llu vs %llu, "
                        "deliveries %llu vs %llu, renders %llu vs "
                        "%llu)\n",
                        threads,
                        static_cast<unsigned long long>(laneRun.events),
                        static_cast<unsigned long long>(
                            serialRun.events),
                        static_cast<unsigned long long>(
                            laneRun.deliveries),
                        static_cast<unsigned long long>(
                            serialRun.deliveries),
                        static_cast<unsigned long long>(laneRun.renders),
                        static_cast<unsigned long long>(
                            serialRun.renders));
            ok = false;
        }
        obs::Json row = obs::Json::object();
        row.set("wall_s", obs::Json(laneRun.wallS));
        row.set("events", obs::Json(laneRun.events));
        row.set("deliveries", obs::Json(laneRun.deliveries));
        row.set("events_per_s", obs::Json(laneRun.eventsPerSec()));
        row.set("wall_per_sim_s", obs::Json(laneRun.wallPerSimS()));
        row.set("speedup_vs_serial_engine", obs::Json(speedup));
        simEngine.set("lane_engine_t" + std::to_string(threads),
                      std::move(row));
    }

    const auto workload = [](double baselineS, const char *baselineKey,
                             double fastS, const char *fastKey) {
        obs::Json w = obs::Json::object();
        w.set(baselineKey, obs::Json(baselineS));
        w.set(fastKey, obs::Json(fastS));
        w.set("speedup", obs::Json(baselineS / fastS));
        return w;
    };
    obs::Json workloads = obs::Json::object();
    workloads.set("viking_partition",
                  workload(partSerial, "serial_s", partPooled, "pooled_s"));
    workloads.set("trace_sweep_64_frames",
                  workload(sweepSerial, "serial_s", sweepPooled,
                           "pooled_s"));
    workloads.set("ssim_512x256_x" + std::to_string(kSsimReps),
                  workload(ssimNaive, "naive_s", ssimFast, "fast_s"));
    obs::Json doc = obs::Json::object();
    doc.set("pool_lanes",
            obs::Json(support::ThreadPool::instance().concurrency()));
    doc.set("hardware_concurrency",
            obs::Json(static_cast<std::uint64_t>(
                std::thread::hardware_concurrency())));
    doc.set("smoke", obs::Json(smoke));
    doc.set("workloads", std::move(workloads));
    doc.set("sim_engine", std::move(simEngine));
    bench::writeBenchJson("parallel", doc);

    if (check && !ok)
        return 1;
    std::printf("\n  parallel checks: %s\n", ok ? "ok" : "FAILED");
    return 0;
}
