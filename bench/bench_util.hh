/**
 * @file
 * Shared helpers for the experiment-reproduction benches: session
 * setup, table formatting, and paper-vs-measured reporting.
 *
 * Every bench prints the paper's reported values next to our measured
 * ones; EXPERIMENTS.md summarises the comparisons.
 */

#pragma once

#include <cstdio>
#include <memory>
#include <string>
#include <vector>

#include "core/session.hh"

namespace coterie::bench {

/** Default bench run length (seconds of simulated play). */
inline constexpr double kBenchDurationS = 40.0;

/** Build a session with bench defaults. */
inline std::unique_ptr<core::Session>
makeSession(world::gen::GameId game, int players,
            double durationS = kBenchDurationS, std::uint64_t seed = 42)
{
    core::SessionParams params;
    params.players = players;
    params.durationS = durationS;
    params.seed = seed;
    return core::Session::create(game, params);
}

/** Print a bench header. */
inline void
banner(const char *title, const char *paperRef)
{
    std::printf("\n==============================================="
                "=============================\n");
    std::printf("%s\n  (reproduces %s)\n", title, paperRef);
    std::printf("================================================"
                "============================\n");
}

/** Print one "paper vs measured" line. */
inline void
compare(const char *label, double paper, double measured,
        const char *unit = "")
{
    std::printf("  %-38s paper %8.2f   measured %8.2f %s\n", label, paper,
                measured, unit);
}

/** Print a CDF as decile rows. */
inline void
printCdf(const char *label, const SampleSet &samples)
{
    std::printf("  %s: n=%zu\n", label, samples.count());
    std::printf("    p10=%.3f p25=%.3f p50=%.3f p75=%.3f p90=%.3f "
                "max=%.3f\n",
                samples.percentile(10), samples.percentile(25),
                samples.percentile(50), samples.percentile(75),
                samples.percentile(90), samples.max());
}

} // namespace coterie::bench

