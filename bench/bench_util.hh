/**
 * @file
 * Shared helpers for the experiment-reproduction benches: session
 * setup, table formatting, and paper-vs-measured reporting.
 *
 * Every bench prints the paper's reported values next to our measured
 * ones; EXPERIMENTS.md summarises the comparisons.
 */

#pragma once

#include <cstdio>
#include <memory>
#include <string>
#include <sys/stat.h>
#include <vector>

#include "core/session.hh"
#include "obs/json.hh"

namespace coterie::bench {

/** Default bench run length (seconds of simulated play). */
inline constexpr double kBenchDurationS = 40.0;

/** Build a session with bench defaults. */
inline std::unique_ptr<core::Session>
makeSession(world::gen::GameId game, int players,
            double durationS = kBenchDurationS, std::uint64_t seed = 42)
{
    core::SessionParams params;
    params.players = players;
    params.durationS = durationS;
    params.seed = seed;
    return core::Session::create(game, params);
}

/** Print a bench header. */
inline void
banner(const char *title, const char *paperRef)
{
    std::printf("\n==============================================="
                "=============================\n");
    std::printf("%s\n  (reproduces %s)\n", title, paperRef);
    std::printf("================================================"
                "============================\n");
}

/** Print one "paper vs measured" line. */
inline void
compare(const char *label, double paper, double measured,
        const char *unit = "")
{
    std::printf("  %-38s paper %8.2f   measured %8.2f %s\n", label, paper,
                measured, unit);
}

/**
 * Write a bench's result document to `results/BENCH_<name>.json` AND
 * the working-directory `BENCH_<name>.json`. Every bench that emits
 * machine-readable numbers goes through here so the two locations
 * (archival under results/, driver pickup at the root) never drift.
 */
inline void
writeBenchJson(const std::string &name, const obs::Json &doc)
{
    ::mkdir("results", 0755);
    const std::string text = doc.dump(2) + "\n";
    const std::string paths[] = {"results/BENCH_" + name + ".json",
                                 "BENCH_" + name + ".json"};
    for (const std::string &path : paths) {
        if (std::FILE *f = std::fopen(path.c_str(), "w")) {
            std::fwrite(text.data(), 1, text.size(), f);
            std::fclose(f);
            std::printf("  wrote %s\n", path.c_str());
        } else {
            std::printf("  could not write %s\n", path.c_str());
        }
    }
}

/** Print a CDF as decile rows. */
inline void
printCdf(const char *label, const SampleSet &samples)
{
    std::printf("  %s: n=%zu\n", label, samples.count());
    std::printf("    p10=%.3f p25=%.3f p50=%.3f p75=%.3f p90=%.3f "
                "max=%.3f\n",
                samples.percentile(10), samples.percentile(25),
                samples.percentile(50), samples.percentile(75),
                samples.percentile(90), samples.max());
}

} // namespace coterie::bench

