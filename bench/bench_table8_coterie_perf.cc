/**
 * @file
 * Table 8: Coterie's detailed per-player performance on Pixel 2 over
 * 802.11ac for 1 and 2 players: FPS, inter-frame latency, CPU/GPU
 * loads, far-BE frame size, and network delay.
 */

#include "bench_util.hh"

using namespace coterie;
using namespace coterie::bench;
using namespace coterie::core;

namespace {

struct PaperRow
{
    double fps, interFrame, cpu, gpu, frameKb, netDelay;
};

PaperRow
paperRow(world::gen::GameId game, int players)
{
    using world::gen::GameId;
    if (players == 1) {
        switch (game) {
          case GameId::Viking: return {60, 16.0, 31.76, 55.51, 280, 7.0};
          case GameId::CTS:    return {60, 16.6, 27.76, 44.81, 150, 6.0};
          case GameId::Racing: return {60, 16.0, 26.99, 39.18, 194, 6.5};
          default: break;
        }
    } else {
        switch (game) {
          case GameId::Viking: return {60, 16.5, 31.89, 57.24, 280, 8.9};
          case GameId::CTS:    return {60, 16.6, 28.13, 46.89, 150, 6.3};
          case GameId::Racing: return {60, 16.2, 28.98, 43.25, 194, 7.5};
          default: break;
        }
    }
    return {};
}

} // namespace

int
main()
{
    banner("Table 8 — Coterie performance (1P and 2P)",
           "Table 8, Section 7.3");

    std::printf("\n  %-12s | %11s | %11s | %11s | %11s | %11s | %11s\n",
                "app", "fps", "if (ms)", "cpu %%", "gpu %%", "frame KB",
                "net (ms)");
    std::printf("  %-12s | %5s %5s | %5s %5s | %5s %5s | %5s %5s | "
                "%5s %5s | %5s %5s\n",
                "", "ppr", "ours", "ppr", "ours", "ppr", "ours", "ppr",
                "ours", "ppr", "ours", "ppr", "ours");
    obs::Json rows = obs::Json::object();
    for (auto game : world::gen::evaluationGames()) {
        for (int players : {1, 2}) {
            auto session = makeSession(game, players);
            const SystemResult result = session->runCoterieSystem();
            const PlayerMetrics &m = result.players.front();
            const PaperRow paper = paperRow(game, players);
            std::printf("  %-8s(%dP) | %5.0f %5.0f | %5.1f %5.1f | "
                        "%5.1f %5.1f | %5.1f %5.1f | %5.0f %5.0f | "
                        "%5.1f %5.1f\n",
                        session->info().name.c_str(), players, paper.fps,
                        result.avgFps(), paper.interFrame,
                        result.avgInterFrameMs(), paper.cpu, m.cpuPct,
                        paper.gpu, m.gpuPct, paper.frameKb, m.frameKb,
                        paper.netDelay, result.avgNetDelayMs());
            std::fflush(stdout);
            obs::Json row = obs::Json::object();
            row.set("fps", obs::Json(result.avgFps()));
            row.set("inter_frame_ms", obs::Json(result.avgInterFrameMs()));
            row.set("cpu_pct", obs::Json(m.cpuPct));
            row.set("gpu_pct", obs::Json(m.gpuPct));
            row.set("frame_kb", obs::Json(m.frameKb));
            row.set("net_delay_ms", obs::Json(result.avgNetDelayMs()));
            rows.set(session->info().name + "_" +
                         std::to_string(players) + "p",
                     std::move(row));
        }
    }
    obs::Json doc = obs::Json::object();
    doc.set("rows", std::move(rows));
    writeBenchJson("table8_coterie_perf", doc);
    return 0;
}
