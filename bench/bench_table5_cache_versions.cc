/**
 * @file
 * Tables 4 and 5: the cache-configuration study (§4.6). Player
 * movement traces are replayed against infinite per-player frame
 * caches under five lookup configurations — exact vs similar matching,
 * and own-prefetch vs overheard (inter-player) caching — for 1-4
 * players of Viking Village.
 *
 * Paper result (Table 5): exact matching never hits; similar matching
 * on self-prefetched frames reaches ~80%%; overhearing adds almost
 * nothing on top — which is why the final design drops it.
 */

#include "bench_util.hh"

#include "core/dist_thresh.hh"
#include "core/prefetcher.hh"
#include "trace/trajectory.hh"

using namespace coterie;
using namespace coterie::bench;
using namespace coterie::core;

namespace {

struct Version
{
    const char *name;
    bool cacheOwn;
    bool cacheOverheard;
    MatchMode mode;
};

const Version kVersions[] = {
    {"V1 exact intra", true, false, MatchMode::ExactOnly},
    {"V2 exact inter", false, true, MatchMode::ExactOnly},
    {"V3 simil intra", true, false, MatchMode::Similar},
    {"V4 simil inter", false, true, MatchMode::Similar},
    {"V5 simil both ", true, true, MatchMode::Similar},
};

/** Replay the session's grid transitions against per-player caches. */
double
replayHitRatio(const Session &session, const Version &version)
{
    const auto &grid = session.grid();
    const auto &thresholds = session.distThresholds();
    Prefetcher prefetcher(session.world(), grid, session.regions(), {});

    const int players = session.traces().playerCount();
    std::vector<std::unique_ptr<FrameCache>> caches;
    for (int p = 0; p < players; ++p) {
        FrameCacheParams params;
        params.capacityBytes = SIZE_MAX; // infinite, per the paper
        params.mode = version.mode;
        params.bucketEdge = 2.0;
        caches.push_back(std::make_unique<FrameCache>(params));
    }

    // Interleave players tick by tick (overhearing is time-ordered).
    std::vector<std::vector<world::GridPoint>> paths;
    std::size_t ticks = SIZE_MAX;
    for (int p = 0; p < players; ++p) {
        paths.push_back({});
        ticks = std::min(ticks,
                         session.traces().players[p].points.size());
    }

    std::uint64_t lookups = 0, hits = 0;
    std::vector<world::GridPoint> last(players, {-1, -1});
    for (std::size_t t = 0; t < ticks; ++t) {
        for (int p = 0; p < players; ++p) {
            const auto g = grid.snap(
                session.traces().players[p].points[t].position);
            if (g == last[p])
                continue;
            last[p] = g;
            const FrameCache::Key key = prefetcher.keyFor(g);
            const double thresh =
                key.leafRegionId < thresholds.size()
                    ? thresholds[key.leafRegionId]
                    : 0.0;
            ++lookups;
            if (caches[p]->lookup(key, thresh)) {
                ++hits;
                continue;
            }
            // Miss: the server reply is cached per the version policy.
            for (int q = 0; q < players; ++q) {
                const bool own = q == p && version.cacheOwn;
                const bool overheard =
                    q != p && version.cacheOverheard;
                if (own || overheard)
                    caches[q]->insert(key, 1);
            }
        }
    }
    return lookups ? static_cast<double>(hits) /
                         static_cast<double>(lookups)
                   : 0.0;
}

} // namespace

int
main()
{
    banner("Tables 4 & 5 — cache lookup configurations, Viking Village",
           "Tables 4 and 5, Section 4.6");

    std::printf("\n  %-15s", "version");
    for (int players = 1; players <= 4; ++players)
        std::printf(" %8dP", players);
    std::printf("\n");

    std::vector<std::unique_ptr<Session>> sessions;
    for (int players = 1; players <= 4; ++players)
        sessions.push_back(
            makeSession(world::gen::GameId::Viking, players, 60.0));

    for (const Version &version : kVersions) {
        std::printf("  %-15s", version.name);
        for (int players = 1; players <= 4; ++players) {
            const double ratio =
                replayHitRatio(*sessions[players - 1], version);
            std::printf(" %8.1f%%", 100.0 * ratio);
            std::fflush(stdout);
        }
        std::printf("\n");
    }
    std::printf("\nPaper (Table 5): V1/V2 0%% everywhere; V3 80.8%%; "
                "V4 0/63.9/67.2/65.4%%; V5 80.8/80.4/80.4/87.7%%.\n");
    return 0;
}
