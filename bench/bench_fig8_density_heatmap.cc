/**
 * @file
 * Figure 8: cutoff radius vs object (triangle) density over Viking
 * Village leaf regions — the heatmap showing that denser regions get
 * smaller radii. We print density statistics per cutoff bin and the
 * rank correlation.
 */

#include <algorithm>
#include <cmath>

#include "bench_util.hh"

using namespace coterie;
using namespace coterie::bench;
using namespace coterie::core;

int
main()
{
    banner("Figure 8 — cutoff radius vs triangle density (Viking)",
           "Figure 8, Section 4.4");

    const auto world =
        world::gen::makeWorld(world::gen::GameId::Viking, 42);
    const auto result = partitionWorld(world, device::pixel2(), {});

    // Bin leaves by cutoff radius; report mean density per bin.
    struct Bin
    {
        double lo, hi;
        RunningStats density;
    };
    std::vector<Bin> bins;
    for (double lo = 0.0; lo < 32.0; lo += 4.0)
        bins.push_back({lo, lo + 4.0, {}});
    bins.push_back({32.0, 1e9, {}});

    for (const LeafRegion &leaf : result.leaves) {
        for (Bin &bin : bins) {
            if (leaf.cutoffRadius >= bin.lo &&
                leaf.cutoffRadius < bin.hi) {
                bin.density.add(leaf.triangleDensity);
                break;
            }
        }
    }

    std::printf("\n  %-14s %8s %16s\n", "cutoff bin (m)", "leaves",
                "mean tri/m^2");
    for (const Bin &bin : bins) {
        if (bin.density.count() == 0)
            continue;
        if (bin.hi > 1e8)
            std::printf("  [%4.0f,  inf ) %8zu %16.0f\n", bin.lo,
                        bin.density.count(), bin.density.mean());
        else
            std::printf("  [%4.0f, %4.0f) %8zu %16.0f\n", bin.lo, bin.hi,
                        bin.density.count(), bin.density.mean());
    }

    // Spearman-style rank correlation between cutoff and density.
    std::vector<const LeafRegion *> leaves;
    for (const LeafRegion &leaf : result.leaves)
        leaves.push_back(&leaf);
    auto rank_of = [&](auto key) {
        std::vector<std::size_t> idx(leaves.size());
        for (std::size_t i = 0; i < idx.size(); ++i)
            idx[i] = i;
        std::sort(idx.begin(), idx.end(), [&](std::size_t a,
                                              std::size_t b) {
            return key(*leaves[a]) < key(*leaves[b]);
        });
        std::vector<double> rank(leaves.size());
        for (std::size_t r = 0; r < idx.size(); ++r)
            rank[idx[r]] = static_cast<double>(r);
        return rank;
    };
    const auto rank_cutoff =
        rank_of([](const LeafRegion &l) { return l.cutoffRadius; });
    const auto rank_density =
        rank_of([](const LeafRegion &l) { return l.triangleDensity; });
    double num = 0.0;
    const double n = static_cast<double>(leaves.size());
    for (std::size_t i = 0; i < leaves.size(); ++i) {
        const double d = rank_cutoff[i] - rank_density[i];
        num += d * d;
    }
    const double rho = 1.0 - 6.0 * num / (n * (n * n - 1.0));
    std::printf("\n  Spearman correlation(cutoff, density) = %.3f "
                "(paper: clearly negative)\n",
                rho);
    return 0;
}
