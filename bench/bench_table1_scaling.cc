/**
 * @file
 * Table 1: performance of Mobile, Thin-client, and Multi-Furion for the
 * three evaluation games with 1 and 2 players — the scaling experiment
 * motivating Coterie. Reports FPS, inter-frame latency, phone CPU/GPU
 * load, per-frame size, and network delay.
 */

#include "bench_util.hh"

using namespace coterie;
using namespace coterie::core;
using namespace coterie::bench;
using world::gen::GameId;
using world::gen::gameInfo;

namespace {

void
printRow(const char *game, int players, const SystemResult &result)
{
    const PlayerMetrics &m = result.players.front();
    std::printf("  %-8s (%dP)  fps=%5.1f  if=%5.1fms  cpu=%4.1f%%  "
                "gpu=%4.1f%%  frame=%4.0fKB  net=%5.1fms\n",
                game, players, result.avgFps(), result.avgInterFrameMs(),
                m.cpuPct, m.gpuPct, m.frameKb, result.avgNetDelayMs());
}

} // namespace

int
main()
{
    banner("Table 1 — Mobile / Thin-client / Multi-Furion scaling",
           "Table 1, Section 3");

    std::printf("\nPaper reference points (Viking): Mobile 26->24 fps; "
                "Thin-client 24->19 fps,\nnet 9.7->19.8 ms; Multi-Furion "
                "60->45 fps, net 9.2->18.3 ms.\n\n");

    for (GameId game : world::gen::evaluationGames()) {
        const auto &info = gameInfo(game);
        for (int players : {1, 2}) {
            auto session = makeSession(game, players);
            std::printf("-- %s, %d player(s) --\n", info.name.c_str(),
                        players);
            printRow("Mobile", players, session->runMobileSystem());
            printRow("Thin-cl", players, session->runThinClientSystem());
            printRow("M-Furion", players,
                     session->runMultiFurionSystem());
        }
    }
    return 0;
}
