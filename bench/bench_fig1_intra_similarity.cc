/**
 * @file
 * Figure 1: CDF of the SSIM between adjacent BE frames along a player
 * trajectory, before (whole BE) and after (far BE) the near/far
 * decoupling, for all nine study games. Frames are actually rendered
 * and compared with real SSIM.
 *
 * Paper: before decoupling, 0-20%% of adjacent pairs exceed SSIM 0.9;
 * after, 85-100%% (outdoor) and 65-90%% (indoor) do.
 */

#include "bench_util.hh"
#include "csv.hh"

#include "core/similarity.hh"
#include "trace/trajectory.hh"

using namespace coterie;
using namespace coterie::bench;
using namespace coterie::core;
using world::gen::GameId;
using world::gen::allGames;

namespace {

constexpr int kPairsPerGame = 48;

} // namespace

int
main()
{
    banner("Figure 1 — intra-player BE frame similarity (rendered SSIM)",
           "Figure 1(a)/(b), Section 4.1/4.5");

    CsvWriter csv("fig1_intra_similarity",
                  {"game", "pair", "ssim_whole_be", "ssim_far_be"});
    std::printf("\n  %-9s %6s | %%pairs SSIM>0.9:  %-9s %-9s\n", "game",
                "pairs", "whole BE", "far BE");
    for (const auto &info : allGames()) {
        const auto world = world::gen::makeWorld(info.id, 42);
        PartitionParams pp;
        pp.reachable = world::gen::makeReachability(info, world);
        const auto partition =
            partitionWorld(world, device::pixel2(), pp);
        const RegionIndex regions(world.bounds(), partition.leaves);
        const RenderedSimilarity rendered(world, 192, 96);

        trace::TrajectoryParams tp;
        tp.players = 1;
        tp.durationS = 60.0;
        tp.seed = 7;
        const auto session = trace::generateTrace(info, world, tp);
        const auto grid = world::gen::makeGrid(info);
        const auto path = session.players[0].gridPath(grid);

        SampleSet whole, far;
        const std::size_t stride =
            std::max<std::size_t>(1, path.size() / kPairsPerGame);
        for (std::size_t i = 0; i + 1 < path.size() && whole.count() <
                                kPairsPerGame;
             i += stride) {
            const geom::Vec2 a = grid.position(path[i]);
            const geom::Vec2 b = grid.position(path[i + 1]);
            const double cutoff = regions.cutoffAt(a);
            const double s_whole = rendered.farBeSsim(a, b, 0.0);
            const double s_far = rendered.farBeSsim(a, b, cutoff);
            whole.add(s_whole);
            far.add(s_far);
            csv.row(info.name, static_cast<int>(whole.count()), s_whole,
                    s_far);
        }
        std::printf("  %-9s %6zu |                   %8.1f%% %8.1f%%\n",
                    info.name.c_str(), whole.count(),
                    100.0 * whole.fractionAbove(image::kGoodSsim),
                    100.0 * far.fractionAbove(image::kGoodSsim));
        std::fflush(stdout);
    }
    std::printf("\nPaper: whole-BE column 0-20%%, far-BE column 85-100%% "
                "(outdoor) / 65-90%% (indoor).\n");
    return 0;
}
