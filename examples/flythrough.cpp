/**
 * @file
 * Scenario example: render a short flythrough of a game world and
 * encode the far-BE panorama sequence as video, the way the Coterie
 * server pre-encodes neighbouring grid points' frames (§5.1).
 *
 * Shows the whole media path end to end: trajectory -> far-BE panoramas
 * -> I/P-frame video -> decode -> per-frame SSIM/PSNR fidelity, plus
 * the compression advantage of P-frames on similar frames.
 *
 *   $ ./flythrough [game: viking|cts|racing] [frames]
 */

#include <cstdio>
#include <cstring>

#include "core/session.hh"
#include "image/metrics.hh"
#include "image/ssim.hh"
#include "image/video.hh"
#include "render/renderer.hh"

using namespace coterie;
using namespace coterie::core;

int
main(int argc, char **argv)
{
    world::gen::GameId game = world::gen::GameId::Viking;
    if (argc > 1 && std::strcmp(argv[1], "cts") == 0)
        game = world::gen::GameId::CTS;
    if (argc > 1 && std::strcmp(argv[1], "racing") == 0)
        game = world::gen::GameId::Racing;
    const int frame_count = argc > 2 ? std::atoi(argv[2]) : 12;

    SessionParams params;
    params.players = 1;
    params.durationS = 20.0;
    auto session = Session::create(game, params);
    std::printf("flythrough: %s, %d far-BE panorama frames\n\n",
                session->info().name.c_str(), frame_count);

    // Sample nearby grid points along the player's path — the same
    // neighbouring-frame sequences the server pre-encodes, and the
    // regime where P-frames pay off (far-BE frames a few centimeters
    // apart are nearly identical).
    const auto path =
        session->traces().players[0].gridPath(session->grid());
    const render::Renderer renderer(session->world());
    std::vector<image::Image> frames;
    const std::size_t stride = 2;
    for (std::size_t i = 0;
         i < path.size() && frames.size() <
             static_cast<std::size_t>(frame_count);
         i += stride) {
        const geom::Vec2 p = session->grid().position(path[i]);
        render::RenderOptions opts;
        opts.layer = render::DepthLayer::farBe(
            session->regions().cutoffAt(p));
        frames.push_back(renderer.renderPanorama(
            session->world().eyePosition(p), 384, 192, opts));
    }

    // Encode as stills vs as video.
    std::size_t stills_bytes = 0;
    for (const image::Image &frame : frames)
        stills_bytes += image::encode(frame).sizeBytes();
    const image::EncodedVideo video = image::encodeVideo(frames);
    const auto decoded = image::decodeVideo(video);

    std::printf("  %-6s %-5s %10s %8s %8s\n", "frame", "type",
                "bytes", "SSIM", "PSNR");
    for (std::size_t i = 0; i < frames.size(); ++i) {
        std::printf("  %-6zu %-5s %10zu %8.3f %7.1fdB\n", i,
                    video.frames[i].type == image::FrameType::Intra
                        ? "I"
                        : "P",
                    video.frames[i].sizeBytes(),
                    image::ssim(frames[i], decoded[i]),
                    image::psnr(frames[i], decoded[i]));
    }
    std::printf("\n  independent stills: %8.1f KB\n",
                stills_bytes / 1024.0);
    std::printf("  I/P video stream  : %8.1f KB (%.2fx smaller)\n",
                video.totalBytes() / 1024.0,
                static_cast<double>(stills_bytes) /
                    static_cast<double>(video.totalBytes()));

    frames.front().writePpm("flythrough_first.ppm");
    decoded.back().writePpm("flythrough_last_decoded.ppm");
    std::printf("\n  wrote flythrough_first.ppm / "
                "flythrough_last_decoded.ppm\n");
    return 0;
}
