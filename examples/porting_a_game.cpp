/**
 * @file
 * Scenario example: porting a new VR game to Coterie.
 *
 * The paper stresses that the framework is app-independent (§6, "Ease
 * of porting VR apps"): a developer supplies a world and runs the
 * offline tools. This example builds a brand-new custom world from
 * scratch with the public world API (not one of the nine study games),
 * then walks the four porting steps:
 *   1. run the adaptive cutoff preprocessing;
 *   2. derive the per-region reuse distances;
 *   3. inspect the pre-rendered frame catalogue;
 *   4. render one split frame (near + far merged) to prove integration.
 */

#include <cstdio>

#include "core/dist_thresh.hh"
#include "core/server.hh"
#include "image/codec.hh"
#include "image/ssim.hh"
#include "render/renderer.hh"
#include "support/rng.hh"

using namespace coterie;
using namespace coterie::core;

namespace {

/** A small custom game world: a courtyard with statues and a wall. */
world::VirtualWorld
buildCourtyard()
{
    world::TerrainParams terrain;
    terrain.seed = 2024;
    terrain.amplitude = 1.0;
    terrain.featureScale = 30.0;
    terrain.trianglesPerM2 = 30.0;
    world::VirtualWorld w("Courtyard", {{0, 0}, {80, 60}}, terrain);

    Rng rng(2024);
    for (int i = 0; i < 12; ++i) {
        world::WorldObject statue;
        statue.shape = world::Shape::CylinderY;
        statue.kind = world::AssetKind::Prop;
        const geom::Vec2 at{rng.uniform(10.0, 70.0),
                            rng.uniform(10.0, 50.0)};
        statue.position = geom::lift(at, w.terrain().heightAt(at));
        statue.dims = {0.6, rng.uniform(2.0, 3.5), 0.0};
        statue.color = {190, 185, 170};
        statue.triangles = 24000;
        w.addObject(statue);
    }
    for (double x = 5.0; x < 75.0; x += 6.0) {
        world::WorldObject crate;
        crate.shape = world::Shape::Box;
        crate.kind = world::AssetKind::Prop;
        crate.position = geom::lift({x, 6.0}, 0.5);
        crate.dims = {1.2, 1.0, 1.2};
        crate.color = {150, 110, 60};
        crate.triangles = 3000;
        w.addObject(crate);
    }
    w.finalize();
    return w;
}

} // namespace

int
main()
{
    std::printf("Porting a custom game ('Courtyard') to Coterie\n\n");
    const world::VirtualWorld world = buildCourtyard();
    const world::GridMap grid(world.bounds(), 1.0 / 32.0);

    // Step 1: adaptive cutoff preprocessing on the target device.
    const auto partition =
        partitionWorld(world, device::pixel2(), {});
    const RegionIndex regions(world.bounds(), partition.leaves);
    std::printf("step 1: %zu leaf regions (avg depth %.2f) from %llu "
                "cutoff calculations\n",
                partition.leaves.size(), partition.avgLeafDepth,
                static_cast<unsigned long long>(
                    partition.cutoffCalculations));

    // Step 2: reuse distances, calibrated against rendered SSIM.
    std::vector<double> cutoffs;
    for (std::size_t i = 0; i < partition.leaves.size();
         i += std::max<std::size_t>(1, partition.leaves.size() / 4))
        cutoffs.push_back(partition.leaves[i].cutoffRadius);
    const AnalyticSimilarity similarity(
        calibrateAnalytic(world, cutoffs));
    const auto thresholds =
        deriveDistThresholds(regions, similarity, {});
    double mean_thresh = 0.0;
    for (double t : thresholds)
        mean_thresh += t;
    mean_thresh /= static_cast<double>(thresholds.size());
    std::printf("step 2: mean reuse distance %.2f m (%.0f grid "
                "steps)\n",
                mean_thresh, mean_thresh / grid.spacing());

    // Step 3: the pre-rendered frame catalogue.
    const FrameStore frames(world, grid, regions);
    std::printf("step 3: far-BE frames ~%.0f KB, whole-BE ~%.0f KB\n",
                frames.meanFarBeKb(), frames.meanWholeBeKb());

    // Step 4: render one split frame and verify the merge.
    const render::Renderer renderer(world);
    const geom::Vec2 pos{40.0, 30.0};
    const double cutoff = regions.cutoffAt(pos);
    render::Camera cam;
    cam.position = world.eyePosition(pos);
    cam.yaw = 0.6;

    render::RenderOptions near_opts;
    near_opts.layer = render::DepthLayer::nearBe(cutoff);
    render::RenderOptions far_opts;
    far_opts.layer = render::DepthLayer::farBe(cutoff);
    const auto near_view =
        renderer.renderPerspective(cam, 320, 180, near_opts);
    const auto far_pano = renderer.renderPanorama(cam.position, 768, 384,
                                                  far_opts);
    const auto far_view = render::cropPanoramaToView(
        image::decode(image::encode(far_pano)), cam, 320, 180);
    const auto merged = render::Renderer::merge(near_view, far_view);
    const auto truth = renderer.renderPerspective(cam, 320, 180, {});
    std::printf("step 4: split-rendered frame vs direct render: "
                "SSIM %.3f (cutoff %.1f m)\n",
                image::ssim(truth, merged), cutoff);

    merged.writePpm("courtyard_split.ppm");
    truth.writePpm("courtyard_truth.ppm");
    std::printf("\nframes written to courtyard_{split,truth}.ppm — the "
                "game is ported.\n");
    return 0;
}
