/**
 * @file
 * Quickstart: the smallest end-to-end use of the Coterie library.
 *
 * Builds the Viking Village world, runs the offline preprocessing
 * (adaptive cutoff partitioning + reuse-distance derivation), starts a
 * 2-player session, and compares Coterie against the Multi-Furion
 * baseline on frame rate, responsiveness, and network load.
 *
 *   $ ./quickstart [players] [seconds]
 *
 * With COTERIE_TRACE=<basename> in the environment, records the whole
 * run through coterie-scope and writes `<basename>.trace.json` (Chrome
 * trace_event — open in Perfetto or feed to trace_report) plus
 * `<basename>.metrics.json` (the metrics-registry snapshot).
 *
 * With COTERIE_CHAOS=1 an extra chaos pass runs Coterie under a
 * scripted fault plan (loss burst, bandwidth collapse, outage) with
 * the resilience layer on — combine with COTERIE_TRACE and feed the
 * trace to trace_report for the fault-timeline section.
 *
 * With COTERIE_INJECT_ASSERT=1 the run trips a deliberate assertion
 * right after the system comparison: the always-on flight recorder's
 * panic hook then writes its ring buffers to `$COTERIE_FLIGHT_DUMP`
 * (default `coterie.flight.json`) before aborting — the CI crash-
 * forensics smoke drives exactly this path and feeds the dump to
 * `trace_report --frames`.
 */

#include <cstdio>
#include <cstdlib>
#include <string>

#include "core/session.hh"
#include "net/resilience.hh"
#include "obs/flight.hh"
#include "obs/metrics.hh"
#include "obs/trace.hh"
#include "sim/faults.hh"
#include "support/logging.hh"

using namespace coterie;
using namespace coterie::core;

int
main(int argc, char **argv)
{
    const int players = argc > 1 ? std::atoi(argv[1]) : 2;
    const double seconds = argc > 2 ? std::atof(argv[2]) : 30.0;

    const char *traceEnv = std::getenv("COTERIE_TRACE");
    const std::string traceBase = traceEnv ? traceEnv : "";
    if (!traceBase.empty())
        obs::TraceRecorder::global().start();

    // Arm the flight recorder's crash dump up front (it would also
    // arm lazily on the first recorded event).
    obs::flight::installPanicDump();

    std::printf("Coterie quickstart: Viking Village, %d player(s), "
                "%.0f s of play\n\n",
                players, seconds);

    // 1. Build the world and run the offline preprocessing. A Session
    //    bundles the virtual world, its grid discretisation, the
    //    adaptive-cutoff quadtree, per-region reuse distances, the
    //    pre-rendered frame catalogue, and multiplayer movement traces.
    SessionParams params;
    params.players = players;
    params.durationS = seconds;
    auto session = Session::create(world::gen::GameId::Viking, params);

    std::printf("offline preprocessing:\n");
    std::printf("  grid points        : %.1f million\n",
                session->grid().pointCount() / 1e6);
    std::printf("  leaf regions       : %zu (avg depth %.2f, max %d)\n",
                session->partition().leaves.size(),
                session->partition().avgLeafDepth,
                session->partition().maxLeafDepth);
    std::printf("  cutoff calculations: %llu (vs %.1f M grid points)\n",
                static_cast<unsigned long long>(
                    session->partition().cutoffCalculations),
                session->grid().pointCount() / 1e6);

    // 2. Run the prior art and Coterie on identical traces.
    const SystemResult furion = session->runMultiFurionSystem();
    const SystemResult coterie = session->runCoterieSystem();

    std::printf("\n%-14s %8s %10s %12s %12s %10s\n", "system", "FPS",
                "frame(ms)", "resp(ms)", "net(Mbps)", "cache hit");
    for (const SystemResult *result : {&furion, &coterie}) {
        double be = 0.0;
        for (const PlayerMetrics &m : result->players)
            be += m.beMbps;
        std::printf("%-14s %8.1f %10.2f %12.2f %12.1f %9.1f%%\n",
                    result->systemName.c_str(), result->avgFps(),
                    result->avgInterFrameMs(),
                    result->players[0].responsivenessMs, be,
                    100.0 * result->avgCacheHitRatio());
    }

    const double reduction =
        furion.players[0].beMbps /
        std::max(0.1, coterie.players[0].beMbps);
    std::printf("\nCoterie reduces the per-player network load %.1fx "
                "while holding 60 FPS.\n",
                reduction);

    // Crash-forensics smoke: trip an assertion while the flight rings
    // hold a full run's worth of frame events, proving the panic hook
    // leaves a loadable dump behind (CI parses it with trace_report).
    if (std::getenv("COTERIE_INJECT_ASSERT") != nullptr) {
        std::printf("\nCOTERIE_INJECT_ASSERT set: tripping a "
                    "deliberate assert; expect a flight dump at %s\n",
                    obs::flight::kCompiledIn
                        ? obs::flight::defaultDumpPath().c_str()
                        : "(flight recorder compiled out)");
        std::fflush(stdout);
        COTERIE_ASSERT(false, "injected by COTERIE_INJECT_ASSERT");
    }

    // 3. Optional chaos pass: the same session under a scripted fault
    //    plan with the resilience layer on (see DESIGN.md §9).
    if (std::getenv("COTERIE_CHAOS") != nullptr) {
        const double ms = seconds * 1000.0;
        sim::FaultPlan plan;
        plan.lossBurst(0.15 * ms, 0.45 * ms, 0.35)
            .latencySpike(0.15 * ms, 0.45 * ms, 4.0)
            .bandwidthCollapse(0.50 * ms, 0.75 * ms, 0.08)
            .outage(0.80 * ms, 0.84 * ms);
        net::ResilienceParams rp;
        rp.enabled = true;
        const SystemResult chaos = session->runCoterieChaos(plan, rp);
        double stallMs = 0.0;
        std::uint64_t degraded = 0, retries = 0;
        for (const PlayerMetrics &m : chaos.players) {
            stallMs += m.stallMs;
            degraded += m.framesDegraded;
            retries += m.netRetries;
        }
        std::printf("\nchaos pass (scripted loss burst + bandwidth "
                    "collapse + outage):\n");
        std::printf("  %-14s %8.1f FPS, %.0f ms frozen, %llu degraded "
                    "frames, %llu retries\n",
                    chaos.systemName.c_str(), chaos.avgFps(), stallMs,
                    static_cast<unsigned long long>(degraded),
                    static_cast<unsigned long long>(retries));
    }

    if (!traceBase.empty()) {
        obs::TraceRecorder::global().stop();
        const std::string tracePath = traceBase + ".trace.json";
        const std::string metricsPath = traceBase + ".metrics.json";
        if (obs::TraceRecorder::global().exportToFile(tracePath))
            std::printf("\nwrote %s (%zu events; open in Perfetto or "
                        "run trace_report)\n",
                        tracePath.c_str(),
                        obs::TraceRecorder::global().eventCount());
        else
            std::printf("\ncould not write %s\n", tracePath.c_str());
        if (obs::MetricsRegistry::global().writeJson(metricsPath))
            std::printf("wrote %s\n", metricsPath.c_str());
        else
            std::printf("could not write %s\n", metricsPath.c_str());
    }
    return 0;
}
