/**
 * @file
 * Scenario example: WLAN capacity planning for a location-based VR
 * arcade. The paper's headline question — how many players fit on one
 * access point — answered by sweeping the player count and channel
 * capacity under Coterie and Multi-Furion for a chosen game.
 *
 *   $ ./capacity_planner [game: viking|cts|racing] [maxPlayers]
 */

#include <cstdio>
#include <cstring>
#include <string>

#include "core/session.hh"

using namespace coterie;
using namespace coterie::core;

namespace {

world::gen::GameId
parseGame(const char *name)
{
    using world::gen::GameId;
    if (name && std::strcmp(name, "cts") == 0)
        return GameId::CTS;
    if (name && std::strcmp(name, "racing") == 0)
        return GameId::Racing;
    return GameId::Viking;
}

} // namespace

int
main(int argc, char **argv)
{
    const world::gen::GameId game =
        parseGame(argc > 1 ? argv[1] : nullptr);
    const int max_players = argc > 2 ? std::atoi(argv[2]) : 4;

    std::printf("Coterie capacity planner: %s, up to %d players\n",
                world::gen::gameInfo(game).name.c_str(), max_players);
    std::printf("QoE bar: 60 FPS, sub-16.7 ms responsiveness.\n\n");

    for (double capacity : {200.0, 500.0, 900.0}) {
        std::printf("-- 802.11 capacity %.0f Mbps --\n", capacity);
        std::printf("  %7s | %-26s | %-26s\n", "players",
                    "Multi-Furion (fps / Mbps)", "Coterie (fps / Mbps)");
        for (int players = 1; players <= max_players; ++players) {
            SessionParams params;
            params.players = players;
            params.durationS = 25.0;
            params.channel.goodputMbps = capacity;
            auto session = Session::create(game, params);
            const SystemResult furion =
                session->runMultiFurionSystem();
            const SystemResult coterie = session->runCoterieSystem();
            double mf_be = 0.0, ct_be = 0.0;
            for (const PlayerMetrics &m : furion.players)
                mf_be += m.beMbps;
            for (const PlayerMetrics &m : coterie.players)
                ct_be += m.beMbps;
            const bool mf_ok = furion.avgFps() >= 59.0;
            const bool ct_ok = coterie.avgFps() >= 59.0;
            std::printf("  %7d | %6.1f / %6.1f  %-8s | %6.1f / %6.1f  "
                        "%-8s\n",
                        players, furion.avgFps(), mf_be,
                        mf_ok ? "[OK]" : "[FAIL]", coterie.avgFps(),
                        ct_be, ct_ok ? "[OK]" : "[FAIL]");
            std::fflush(stdout);
        }
    }
    std::printf("\nReading: the prior art needs ~270 Mbps per player; "
                "Coterie's frame cache cuts\nthat by an order of "
                "magnitude, so one AP carries a full 4-player arcade "
                "pod.\n");
    return 0;
}
