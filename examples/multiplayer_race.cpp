/**
 * @file
 * Scenario example: a four-car race on Racing Mountain.
 *
 * Demonstrates the trace machinery (track-following trajectories with
 * chase proximity), trace persistence, and how Coterie's QoE holds up
 * as the grid spacing and player speed change by an order of magnitude
 * compared to the walking games.
 *
 *   $ ./multiplayer_race [trace-file]
 */

#include <cstdio>

#include "core/session.hh"
#include "trace/trace.hh"

using namespace coterie;
using namespace coterie::core;

int
main(int argc, char **argv)
{
    std::printf("Coterie multiplayer race: Racing Mountain, 4 cars\n\n");

    SessionParams params;
    params.players = 4;
    params.durationS = 45.0;
    auto session = Session::create(world::gen::GameId::Racing, params);

    // The cars chase each other around the loop; show their proximity.
    const double separation =
        trace::meanPlayerSeparation(session->traces());
    std::printf("track world  : %.0f x %.0f m, grid pitch %.3f m\n",
                session->info().width, session->info().height,
                session->info().gridSpacing);
    std::printf("car speed    : %.1f m/s (~%.0f km/h), mean pairwise "
                "separation %.1f m\n",
                session->info().playerSpeed,
                session->info().playerSpeed * 3.6, separation);

    // Persist the race for later replay (e.g. by the user-study bench).
    if (argc > 1) {
        if (trace::saveTrace(session->traces(), argv[1]))
            std::printf("trace saved  : %s\n", argv[1]);
    }

    // Race under Coterie and under the replicated prior art.
    const SystemResult coterie = session->runCoterieSystem();
    const SystemResult furion = session->runMultiFurionSystem();

    std::printf("\nper-car results under Coterie:\n");
    for (const PlayerMetrics &m : coterie.players) {
        std::printf("  car %d: %5.1f FPS, %5.2f ms responsiveness, "
                    "%5.1f Mbps, hit %4.1f%%\n",
                    m.playerId + 1, m.fps, m.responsivenessMs, m.beMbps,
                    100.0 * m.cacheHitRatio);
    }
    std::printf("\nMulti-Furion with 4 cars: %.1f FPS "
                "(channel-saturated); Coterie: %.1f FPS.\n",
                furion.avgFps(), coterie.avgFps());
    return 0;
}
